"""Unit tests for the transactional update engine (DESIGN.md §9).

Covers the statement grammar and its static updating-ness rules, the
pending-update-list conflict matrix, atomicity of rejected statements,
the incremental apply paths (in-place rename, single-hierarchy
re-registration, full text rebuild), the stale-plan regression (plan
caches keyed by document version), post-mutation ``.mhx`` round trips,
and the CLI ``update`` command.
"""

from __future__ import annotations

import pytest

from repro.api import Engine, load_mhx
from repro.cli import main
from repro.errors import (
    QuerySyntaxError,
    UpdateConflictError,
    UpdateError,
)
from repro.core.lang import parse_query, parse_update, parse_xpath
from repro.core.update import compile_update


SOURCES = {
    "blocks": "<r><a>abc</a><b>def</b></r>",
    "halves": "<r><c>abcd</c>ef</r>",
}
TEXT = "abcdef"


@pytest.fixture()
def engine() -> Engine:
    return Engine.from_xml(TEXT, dict(SOURCES))


def serialized(engine: Engine) -> dict[str, str]:
    return {name: hierarchy.to_xml() for name, hierarchy
            in engine.document.hierarchies.items()}


# ---------------------------------------------------------------------------
# grammar and static rules
# ---------------------------------------------------------------------------


class TestUpdateGrammar:
    def test_all_primitive_forms_parse(self):
        for statement in (
                "insert node <w>x</w> into (//a)[1]",
                "insert node <w>x</w> as first into (//a)[1]",
                "insert node <w>x</w> as last into (//a)[1]",
                "insert node <w>x</w> before (//a)[1]",
                "insert node <w>x</w> after (//a)[1]",
                "delete node //a",
                "replace value of node (//a)[1] with 'xyz'",
                "rename node //a as 'seg'",
                "add markup seg to 'blocks' covering (//a)[1]",
                "remove markup (//a)[1]",
                "delete node //a, rename node //b as 'c'",
                "for $x in //a return delete node $x",
                "if (count(//a) > 1) then delete node (//a)[1] else ()",
        ):
            parse_update(statement)

    def test_queries_are_not_update_statements(self):
        with pytest.raises(QuerySyntaxError):
            parse_update("count(//a)")

    def test_update_rejected_in_query_and_xpath(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("delete node //a")
        with pytest.raises(QuerySyntaxError):
            parse_xpath("delete node //a")

    def test_update_rejected_outside_statement_position(self):
        for bad in ("count(delete node //a)",
                    "for $x in delete node //a return $x",
                    "(//a)[delete node //b]",
                    "let $d := delete node //a return $d"):
            with pytest.raises(QuerySyntaxError):
                parse_update(bad)

    def test_engine_query_rejects_updates(self, engine):
        with pytest.raises(QuerySyntaxError):
            engine.query("delete node //a")

    def test_explain_update(self, engine):
        report = engine.explain_update(
            "insert node <w>x</w> as first into (//a)[1]")
        assert "update insert [into-first]" in report
        assert "construct <w>" in report

    def test_compile_update_is_cached(self, engine):
        compiled = engine.compile_update("delete node //a")
        assert engine.compile_update("delete node //a") is compiled


# ---------------------------------------------------------------------------
# primitives and apply paths
# ---------------------------------------------------------------------------


class TestApplyPaths:
    def test_rename_is_fully_in_place(self, engine):
        engine.goddag.span_index()
        before = engine.version
        result = engine.update("rename node (//a)[1] as 'alpha'")
        assert result.renamed_in_place == 1
        assert result.replaced_hierarchies == []
        assert not result.text_changed
        assert engine.version > before
        assert engine.query("count(//alpha)").items == [1]
        assert engine.query("count(//a)").items == [0]
        assert serialized(engine)["blocks"] == \
            "<r><alpha>abc</alpha><b>def</b></r>"

    def test_add_and_remove_markup_touch_one_hierarchy(self, engine):
        result = engine.update(
            "add markup seg to 'halves' covering (//a)[1]")
        assert result.replaced_hierarchies == ["halves"]
        assert serialized(engine)["halves"] == \
            "<r><c><seg>abc</seg>d</c>ef</r>"
        assert engine.query("string((//seg)[1])").items == ["abc"]
        result = engine.update("remove markup (//seg)[1]")
        assert result.replaced_hierarchies == ["halves"]
        assert serialized(engine)["halves"] == SOURCES["halves"]

    def test_add_markup_proper_overlap_rejected(self, engine):
        before = serialized(engine)
        with pytest.raises(UpdateError):
            # [0,4) would properly overlap <a>[0,3) in 'blocks'.
            engine.update("add markup seg to 'blocks' covering (//c)[1]")
        assert serialized(engine) == before

    def test_replace_value_rebuilds_all_hierarchies(self, engine):
        result = engine.update(
            "replace value of node (//a)[1] with 'XY'")
        assert result.text_changed and result.text_delta == -1
        assert set(result.replaced_hierarchies) == {"blocks", "halves"}
        assert engine.document.text == "XYdef"
        assert serialized(engine)["blocks"] == "<r><a>XY</a><b>def</b></r>"
        assert serialized(engine)["halves"] == "<r><c>XYd</c>ef</r>"

    def test_insert_into_and_siblings(self, engine):
        engine.update("insert node <n>1</n> as first into (//b)[1]")
        assert engine.document.text == "abc1def"
        assert serialized(engine)["blocks"] == \
            "<r><a>abc</a><b><n>1</n>def</b></r>"
        engine.update("insert node <n>2</n> after (//a)[1]")
        assert engine.document.text == "abc21def"
        assert serialized(engine)["blocks"] == \
            "<r><a>abc</a><n>2</n><b><n>1</n>def</b></r>"

    def test_insert_copies_existing_node(self, engine):
        engine.update("insert node (//a)[1] as last into (//b)[1]")
        assert engine.document.text == "abcdefabc"
        assert serialized(engine)["blocks"] == \
            "<r><a>abc</a><b>def<a>abc</a></b></r>"
        # The other hierarchy absorbed the text through its text nodes.
        assert serialized(engine)["halves"] == "<r><c>abcd</c>efabc</r>"

    def test_delete_removes_markup_and_text(self, engine):
        result = engine.update("delete node (//a)[1]")
        assert result.text_changed and result.text_delta == -3
        assert engine.document.text == "def"
        assert serialized(engine)["blocks"] == "<r><b>def</b></r>"
        assert serialized(engine)["halves"] == "<r><c>d</c>ef</r>"

    def test_flwor_bulk_update(self, engine):
        engine.update("for $x in //* return rename node $x as 'n'")
        assert engine.query("count(//n)").items == [3]

    def test_update_with_variables(self, engine):
        node = engine.query("(//b)[1]").items
        engine.update("delete node $target", variables={"target": node})
        assert engine.document.text == "abc"

    def test_conditional_update_vacuous_branch(self, engine):
        result = engine.update(
            "if (count(//zzz) > 0) then delete node (//a)[1] else ()")
        assert result.applied == 0
        assert engine.document.text == TEXT

    def test_bulk_delete_of_adjacent_siblings(self, engine):
        """Adjacent removal ranges compare half-open: one statement may
        delete every sibling of a hierarchy (the XQuery Update norm).
        Overlapping removals across hierarchies still conflict."""
        result = engine.update("for $x in //a | //b return delete node $x")
        assert result.counts["delete"] == 2
        assert engine.document.text == ""
        assert serialized(engine) == {"blocks": "<r/>",
                                      "halves": "<r><c/></r>"}
        with pytest.raises(UpdateConflictError):
            # Re-seed, then delete overlapping elements of two
            # hierarchies at once: genuinely ambiguous, rejected.
            fresh = Engine.from_xml(TEXT, dict(SOURCES))
            fresh.update("delete node (//a)[1], delete node (//c)[1]")

    def test_adjacent_replaces_in_one_statement(self, engine):
        engine.update("replace value of node (//a)[1] with 'AAA', "
                      "replace value of node (//b)[1] with 'BBB'")
        assert engine.document.text == "AAABBB"
        # Each replacement anchors at the text node containing its
        # edit's start offset, so <c> (which contains both starts)
        # absorbs both replacements.
        assert serialized(engine)["halves"] == "<r><c>AAABBB</c></r>"

    def test_text_phase_applies_in_kind_order(self):
        """replace → delete → insert is a fixed kind order: the two
        comma orders of an insert-into-replaced-node statement must
        produce identical documents."""
        results = []
        for statement in (
                "insert node <x/> as first into (//b)[1], "
                "replace value of node (//b)[1] with 'Z'",
                "replace value of node (//b)[1] with 'Z', "
                "insert node <x/> as first into (//b)[1]"):
            fresh = Engine.from_xml(TEXT, dict(SOURCES))
            fresh.update(statement)
            results.append((fresh.document.text, serialized(fresh)))
        assert results[0] == results[1]
        assert results[0][1]["blocks"] == "<r><a>abc</a><b><x/>Z</b></r>"

    def test_insert_with_empty_target_raises(self, engine):
        from repro.errors import QueryEvaluationError

        before = serialized(engine)
        with pytest.raises(QueryEvaluationError):
            engine.update("insert node <x>1</x> into //nosuch")
        assert serialized(engine) == before


# ---------------------------------------------------------------------------
# conflicts and atomicity
# ---------------------------------------------------------------------------


class TestConflicts:
    def test_duplicate_rename_conflicts(self, engine):
        with pytest.raises(UpdateConflictError):
            engine.update("rename node (//a)[1] as 'x', "
                          "rename node (//a)[1] as 'y'")

    def test_duplicate_replace_conflicts(self, engine):
        with pytest.raises(UpdateConflictError):
            engine.update("replace value of node (//a)[1] with 'x', "
                          "replace value of node (//a)[1] with 'y'")

    def test_same_point_inserts_conflict(self, engine):
        with pytest.raises(UpdateConflictError):
            engine.update("insert node <x>1</x> before (//b)[1], "
                          "insert node <y>2</y> before (//b)[1]")

    def test_overlapping_text_edits_conflict(self, engine):
        with pytest.raises(UpdateConflictError):
            engine.update("delete node (//a)[1], "
                          "replace value of node (//c)[1] with 'q'")

    def test_remove_markup_plus_delete_conflicts(self, engine):
        with pytest.raises(UpdateConflictError):
            engine.update("remove markup (//a)[1], delete node (//a)[1]")

    def test_overlapping_wraps_conflict_before_mutation(self):
        engine = Engine.from_xml(TEXT, {
            "blocks": "<r><a>abc</a><b>def</b></r>",
            "halves": "<r><c>ab</c><d>cdef</d></r>",
        })
        before = {name: h.to_xml() for name, h
                  in engine.document.hierarchies.items()}
        with pytest.raises(UpdateConflictError):
            engine.update(
                "add markup x to 'blocks' covering "
                "/descendant::leaf()[position() <= 2], "
                "add markup y to 'blocks' covering "
                "/descendant::leaf()[position() >= 2]")
        assert {name: h.to_xml() for name, h
                in engine.document.hierarchies.items()} == before
        engine.goddag.check_invariants()
        # Equal-extent wraps nest innermost instead of conflicting.
        engine.update("add markup outer to 'blocks' covering //a, "
                      "add markup inner to 'blocks' covering //a")
        assert engine.document.hierarchies["blocks"].to_xml() == \
            "<r><a><outer><inner>abc</inner></outer></a><b>def</b></r>"

    def test_nested_deletes_collapse(self, engine):
        engine.update("add markup seg to 'blocks' covering (//a)[1]")
        result = engine.update("delete node (//a)[1], "
                               "delete node (//seg)[1]")
        assert result.counts["delete"] == 1
        assert engine.document.text == "def"

    def test_rejected_statement_is_atomic(self, engine):
        engine.goddag.span_index()
        before_text = engine.document.text
        before_sources = serialized(engine)
        with pytest.raises(UpdateConflictError):
            engine.update("rename node (//a)[1] as 'ok', "
                          "delete node (//b)[1], "
                          "replace value of node (//b)[1] with 'x'")
        assert engine.document.text == before_text
        assert serialized(engine) == before_sources
        engine.goddag.check_invariants()
        assert engine.query("count(//a)").items == [1]

    def test_invalid_rename_name_rejected(self, engine):
        with pytest.raises(UpdateError):
            engine.update("rename node (//a)[1] as '9bad name'")


# ---------------------------------------------------------------------------
# stale-plan regression: caches must be invalidated by document version
# ---------------------------------------------------------------------------


class TestPlanCacheInvalidation:
    def test_cached_plans_see_mutations(self, engine):
        """The stale-plan read: a compiled plan cached before a rename
        must not serve pre-mutation name-index state afterwards."""
        engine.goddag.span_index()
        # Warm the plan cache and the per-name element indexes.
        assert engine.query("count(/descendant::a)").items == [1]
        assert engine.query("count(/descendant::alpha)").items == [0]
        assert engine.query("/descendant::a[xdescendant::leaf()]"
                            ).items != []
        engine.update("rename node (//a)[1] as 'alpha'")
        # Same query texts, same engine: must reflect the mutation.
        assert engine.query("count(/descendant::a)").items == [0]
        assert engine.query("count(/descendant::alpha)").items == [1]
        assert engine.query("/descendant::alpha[xdescendant::leaf()]"
                            ).items != []

    def test_cache_keys_include_version(self, engine):
        first = engine.query("count(//a)")
        assert first.stats.plan_cache_hit is False
        again = engine.query("count(//a)")
        assert again.stats.plan_cache_hit is True
        engine.update("rename node (//b)[1] as 'beta'")
        post = engine.query("count(//a)")
        assert post.stats.plan_cache_hit is False  # new version, new key
        repeat = engine.query("count(//a)")
        assert repeat.stats.plan_cache_hit is True

    def test_compile_objects_not_shared_across_versions(self, engine):
        compiled = engine.compile("count(//a)")
        engine.update("rename node (//b)[1] as 'beta'")
        assert engine.compile("count(//a)") is not compiled


# ---------------------------------------------------------------------------
# persistence: .mhx round trip after mutation
# ---------------------------------------------------------------------------


class TestPersistence:
    def test_mhx_round_trip_after_updates(self, engine, tmp_path):
        engine.update("rename node (//a)[1] as 'alpha'")
        engine.update("insert node <n>42</n> after (//alpha)[1]")
        engine.update("add markup seg to 'halves' covering (//n)[1]")
        path = tmp_path / "mutated.mhx"
        engine.save_mhx(path)
        reloaded = Engine(load_mhx(path))
        assert reloaded.document.text == engine.document.text
        for query in ("count(//alpha)", "count(//n)",
                      "string((//seg)[1])", "count(//leaf())"):
            assert reloaded.query(query).items == \
                engine.query(query).items
        reloaded.goddag.check_invariants()


# ---------------------------------------------------------------------------
# invariant checking catches corruption
# ---------------------------------------------------------------------------


class TestInvariantNet:
    def test_detects_stale_order_key(self, engine):
        from repro.errors import GoddagError

        node = engine.query("(//a)[1]").items[0]
        engine.goddag.order_key(node)      # cache the packed key
        node._okey = node._okey + 1        # corrupt it
        with pytest.raises(GoddagError):
            engine.goddag.check_invariants()

    def test_detects_stale_span_index_name(self, engine):
        from repro.errors import GoddagError

        engine.goddag.span_index()
        node = engine.query("(//a)[1]").items[0]
        node._name = "smuggled"            # bypass rename_element
        with pytest.raises(GoddagError):
            engine.goddag.check_invariants()

    def test_detects_partition_desync(self, engine):
        from repro.errors import GoddagError

        engine.goddag.partition.add_boundaries([2])
        with pytest.raises(GoddagError):
            engine.goddag.check_invariants()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestUpdateCli:
    def test_update_summary_and_out(self, tmp_path, capsys):
        out = tmp_path / "sample.mhx"
        code = main(["update", "--sample",
                     "rename node (//w)[1] as 'word'",
                     "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "applied 1 primitives" in printed
        assert "rename: 1" in printed
        reloaded = Engine(load_mhx(out))
        assert reloaded.query("count(//word)").items == [1]

    def test_update_explain(self, capsys):
        code = main(["update", "--sample", "--explain",
                     "delete node (//w)[1]"])
        assert code == 0
        assert "update delete" in capsys.readouterr().out

    def test_update_conflict_reports_error(self, capsys):
        code = main(["update", "--sample",
                     "rename node (//w)[1] as 'x', "
                     "rename node (//w)[1] as 'y'"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
