"""Tests for the fragmentation/milestone baselines and flat queries."""

from __future__ import annotations

import pytest

from repro.baselines import (
    defragment,
    demilestone,
    fragment_document,
    milestone_document,
)
from repro.baselines.flatquery import (
    fragment_groups,
    groups_overlapping,
    lines_containing_group,
    milestone_groups,
    primary_groups,
    search_groups,
    text_offsets,
)
from repro.cmh.spans import spans_of
from repro.corpus.generator import GeneratorConfig, generate_document
from repro.markup import parse, serialize


def span_signature(document):
    return sorted((s.start, s.end, s.name) for s in spans_of(document))


class TestFragmentation:
    def test_flat_document_is_well_formed(self, boethius_doc):
        flat = fragment_document(boethius_doc)
        reparsed = parse(serialize(flat))
        assert reparsed.root.name == "r"

    def test_text_preserved(self, boethius_doc):
        flat = fragment_document(boethius_doc)
        assert flat.root.text_content() == boethius_doc.text

    def test_singallice_is_fragmented(self, boethius_doc):
        flat = fragment_document(boethius_doc)
        words = fragment_groups(flat, "w")
        singallice = [g for g in words if g.text == "singallice"]
        assert len(singallice) == 1
        assert len(singallice[0].elements) == 2  # split by the line break
        parts = [e.get("part") for e in singallice[0].elements]
        assert parts == ["I", "F"]

    def test_unfragmented_elements_have_no_part(self, boethius_doc):
        flat = fragment_document(boethius_doc)
        words = fragment_groups(flat, "w")
        whole = [g for g in words if g.text == "sibbe"][0]
        assert whole.elements[0].get("part") is None

    def test_round_trip_boethius(self, boethius_doc):
        flat = fragment_document(boethius_doc)
        rebuilt = defragment(flat)
        assert rebuilt.text == boethius_doc.text
        for name in boethius_doc.hierarchy_names:
            assert span_signature(rebuilt[name].document) == \
                span_signature(boethius_doc[name].document)

    def test_round_trip_synthetic(self):
        document = generate_document(GeneratorConfig(n_words=120, seed=7))
        flat = fragment_document(document)
        assert flat.root.text_content() == document.text
        rebuilt = defragment(flat)
        for name in document.hierarchy_names:
            assert span_signature(rebuilt[name].document) == \
                span_signature(document[name].document)

    def test_fragment_count_grows_with_overlap(self):
        tame = generate_document(GeneratorConfig(
            n_words=150, seed=3, hyphenation_rate=0.0,
            boundary_cross_rate=0.0))
        wild = generate_document(GeneratorConfig(
            n_words=150, seed=3, hyphenation_rate=0.9,
            boundary_cross_rate=1.0))
        count_tame = sum(1 for _ in
                         fragment_document(tame).root.iter_elements())
        count_wild = sum(1 for _ in
                         fragment_document(wild).root.iter_elements())
        assert count_wild > count_tame

    def test_hierarchy_order_controls_nesting(self, boethius_doc):
        flat = fragment_document(
            boethius_doc,
            hierarchy_order=["structural", "physical", "restoration",
                             "damage"])
        assert flat.root.text_content() == boethius_doc.text
        rebuilt = defragment(flat)
        for name in boethius_doc.hierarchy_names:
            assert span_signature(rebuilt[name].document) == \
                span_signature(boethius_doc[name].document)


class TestMilestones:
    def test_document_well_formed_and_aligned(self, boethius_doc):
        flat = milestone_document(boethius_doc, primary="structural")
        reparsed = parse(serialize(flat))
        assert reparsed.root.text_content() == boethius_doc.text

    def test_markers_present(self, boethius_doc):
        flat = milestone_document(boethius_doc, primary="structural")
        names = {e.name for e in flat.root.iter_elements()}
        assert {"lineS", "lineE", "dmgS", "dmgE", "resS", "resE"} <= names
        assert "w" in names  # primary keeps real elements

    def test_round_trip(self, boethius_doc):
        flat = milestone_document(boethius_doc, primary="structural")
        rebuilt = demilestone(flat, "structural")
        for name in boethius_doc.hierarchy_names:
            assert span_signature(rebuilt[name].document) == \
                span_signature(boethius_doc[name].document)

    def test_round_trip_synthetic(self):
        document = generate_document(GeneratorConfig(n_words=100, seed=11))
        flat = milestone_document(document, primary="structural")
        rebuilt = demilestone(flat, "structural")
        for name in document.hierarchy_names:
            assert span_signature(rebuilt[name].document) == \
                span_signature(document[name].document)

    def test_unknown_primary_rejected(self, boethius_doc):
        from repro.errors import BaselineError

        with pytest.raises(BaselineError, match="no hierarchy"):
            milestone_document(boethius_doc, primary="bogus")


class TestFlatQueries:
    def test_text_offsets_cover_document(self, boethius_doc):
        flat = fragment_document(boethius_doc)
        offsets, text = text_offsets(flat)
        assert text == boethius_doc.text
        root_span = offsets[id(flat.root)]
        assert root_span == (0, len(text))

    def test_search_requires_reassembly(self, boethius_doc):
        flat = fragment_document(boethius_doc)
        # Naive DOM search cannot see the fragmented word...
        naive = [e for e in flat.root.iter_elements("w")
                 if e.text_content() == "singallice"]
        assert naive == []
        # ...but group reassembly finds it.
        words = fragment_groups(flat, "w")
        assert len(search_groups(words, "singallice")) == 1

    def test_flat_answer_matches_goddag_q_i1(self, boethius_doc, goddag):
        from repro.core.runtime import evaluate_query

        flat = fragment_document(boethius_doc)
        words = fragment_groups(flat, "w")
        hits = search_groups(words, "singallice")
        lines = fragment_groups(flat, "line")
        flat_lines = sorted(
            g.text for g in lines_containing_group(lines, hits))
        goddag_lines = sorted(
            evaluate_query(goddag, PAPER_Q_I1))
        assert flat_lines == goddag_lines

    def test_flat_damaged_words_match_goddag(self, boethius_doc, goddag):
        from repro.core.runtime import evaluate_query

        flat = fragment_document(boethius_doc)
        words = fragment_groups(flat, "w")
        damage = fragment_groups(flat, "dmg")
        flat_damaged = sorted(
            g.text for g in groups_overlapping(words, damage))
        goddag_damaged = sorted(evaluate_query(
            goddag,
            "for $w in /descendant::w[xancestor::dmg or xdescendant::dmg "
            "or overlapping::dmg] return string($w)"))
        assert flat_damaged == goddag_damaged

    def test_milestone_groups_extents(self, boethius_doc):
        flat = milestone_document(boethius_doc, primary="structural")
        lines = milestone_groups(flat, "line")
        assert [(g.start, g.end) for g in lines] == [(0, 27), (27, 51)]

    def test_primary_groups(self, boethius_doc):
        flat = milestone_document(boethius_doc, primary="structural")
        words = primary_groups(flat, "w")
        assert [g.text for g in words] == [
            "gesceaftum", "unawendendne", "singallice", "sibbe",
            "gecynde", "ϸa"]

    def test_flat_milestone_answer_matches_goddag(self, boethius_doc,
                                                  goddag):
        from repro.core.runtime import evaluate_query

        flat = milestone_document(boethius_doc, primary="structural")
        words = primary_groups(flat, "w")
        hits = search_groups(words, "singallice")
        lines = milestone_groups(flat, "line")
        flat_lines = sorted(
            g.text for g in lines_containing_group(lines, hits))
        assert flat_lines == sorted(evaluate_query(goddag, PAPER_Q_I1))


PAPER_Q_I1 = ('for $l in /descendant::line'
              '[xdescendant::w[string(.) = "singallice"] or '
              'overlapping::w[string(.) = "singallice"]] '
              'return string($l)')
