"""Tests for concurrent markup hierarchies and aligned documents."""

from __future__ import annotations

import pytest

from repro.errors import AlignmentError, CMHError, ValidationError
from repro.cmh import (
    ConcurrentMarkupHierarchy,
    Hierarchy,
    MultihierarchicalDocument,
)
from repro.markup import parse
from repro.corpus.boethius import DTD_SOURCES


class TestCMHSchema:
    def test_valid_cmh(self):
        cmh = ConcurrentMarkupHierarchy.from_sources("r", DTD_SOURCES)
        assert set(cmh.hierarchy_names) == set(DTD_SOURCES)
        assert cmh.root == "r"

    def test_root_must_be_declared_everywhere(self):
        with pytest.raises(CMHError, match="does not declare"):
            ConcurrentMarkupHierarchy.from_sources("r", {
                "a": "<!ELEMENT r (x*)> <!ELEMENT x EMPTY>",
                "b": "<!ELEMENT other EMPTY>",
            })

    def test_non_root_sharing_rejected(self):
        with pytest.raises(CMHError, match="only the root"):
            ConcurrentMarkupHierarchy.from_sources("r", {
                "a": "<!ELEMENT r (x*)> <!ELEMENT x EMPTY>",
                "b": "<!ELEMENT r (x*)> <!ELEMENT x EMPTY>",
            })

    def test_unreachable_elements_rejected(self):
        with pytest.raises(CMHError, match="not reachable"):
            ConcurrentMarkupHierarchy.from_sources("r", {
                "a": "<!ELEMENT r (x*)> <!ELEMENT x EMPTY>"
                     "<!ELEMENT island EMPTY>",
            })

    def test_empty_cmh_rejected(self):
        with pytest.raises(CMHError, match="at least one"):
            ConcurrentMarkupHierarchy("r", {})

    def test_hierarchy_of_element(self):
        cmh = ConcurrentMarkupHierarchy.from_sources("r", DTD_SOURCES)
        assert cmh.hierarchy_of_element("dmg") == "damage"
        assert cmh.hierarchy_of_element("w") == "structural"
        assert cmh.hierarchy_of_element("r") is None
        assert cmh.hierarchy_of_element("nope") is None

    def test_elements_of(self):
        cmh = ConcurrentMarkupHierarchy.from_sources("r", DTD_SOURCES)
        assert cmh.elements_of("damage") == {"r", "dmg"}


class TestMultihierarchicalDocument:
    def test_from_xml_alignment(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        assert document.hierarchy_names == list(encodings)
        assert document.root_name == "r"
        # Every text node carries its span after alignment.
        for hierarchy in document.hierarchies.values():
            for text in hierarchy.document.root.iter_text():
                assert text.start is not None
                assert base_text[text.start:text.end] == text.data

    def test_misaligned_content_rejected(self):
        with pytest.raises(AlignmentError) as info:
            MultihierarchicalDocument.from_xml("abc", {"h": "<r>abX</r>"})
        assert info.value.offset == 2
        assert info.value.hierarchy == "h"

    def test_short_content_rejected(self):
        with pytest.raises(AlignmentError, match="covers only"):
            MultihierarchicalDocument.from_xml("abcdef", {"h": "<r>abc</r>"})

    def test_duplicate_hierarchy_rejected(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        with pytest.raises(CMHError, match="duplicate"):
            document.add_hierarchy(
                Hierarchy("physical", parse(encodings["physical"])))

    def test_mismatched_root_rejected(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        spaces = " " * len(base_text)
        bad = Hierarchy("other", parse(f"<other>{base_text}</other>"))
        with pytest.raises(CMHError, match="root"):
            document.add_hierarchy(bad)
        del spaces

    def test_remove_hierarchy(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        document.remove_hierarchy("damage")
        assert "damage" not in document
        with pytest.raises(CMHError):
            document.remove_hierarchy("damage")

    def test_container_protocol(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        assert len(document) == 4
        assert "physical" in document
        assert document["physical"].name == "physical"

    def test_attach_cmh_validates(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        cmh = ConcurrentMarkupHierarchy.from_sources("r", DTD_SOURCES)
        document.attach_cmh(cmh)
        assert document.cmh is cmh

    def test_attach_cmh_missing_hierarchy(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        partial = {k: v for k, v in DTD_SOURCES.items() if k != "damage"}
        cmh = ConcurrentMarkupHierarchy.from_sources("r", partial)
        with pytest.raises(CMHError, match="no DTD"):
            document.attach_cmh(cmh)

    def test_attach_cmh_invalid_content(self, base_text):
        document = MultihierarchicalDocument.from_xml(
            base_text, {"physical": f"<r>{base_text}</r>"})
        cmh = ConcurrentMarkupHierarchy.from_sources(
            "r", {"physical": DTD_SOURCES["physical"]})
        with pytest.raises(ValidationError, match="physical"):
            document.attach_cmh(cmh)

    def test_verify_alignment_detects_mutation(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        first_text = next(
            document["physical"].document.root.iter_text())
        first_text.data = "CORRUPTED" + first_text.data
        with pytest.raises(AlignmentError):
            document.verify_alignment()

    def test_hierarchy_to_xml(self, base_text, encodings):
        document = MultihierarchicalDocument.from_xml(base_text, encodings)
        assert "<line>" in document["physical"].to_xml()

    def test_empty_document_root_name_raises(self):
        with pytest.raises(CMHError):
            MultihierarchicalDocument("x").root_name
