"""Chaos/robustness tests for the query service (DESIGN.md §14).

Mid-request disconnects, oversized bodies, malformed JSON/XQuery (400
with the parse error, never a 500), the queue-overflow and
quota-exhaustion 429 paths, and graceful drain finishing in-flight
requests — plus the store-side invariant that no fault ever leaves a
forked-but-unpublished snapshot behind.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.corpus.boethius import boethius_document
from repro.server import ServerConfig, ServerHandle
from repro.server.service import QueryService
from repro.store import DocumentStore

REPO_ROOT = Path(__file__).resolve().parents[1]


def wait_until(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:  # pragma: no cover
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


def read_response(stream) -> tuple[int, dict[str, str], bytes]:
    """Parse one Content-Length-framed response off a socket file."""
    status_line = stream.readline().decode("ascii")
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = stream.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = stream.read(int(headers.get("content-length", "0")))
    return status, headers, body


@pytest.fixture()
def fresh(tmp_path):
    store = DocumentStore.init(tmp_path / "catalog")
    store.add("boe", boethius_document(validate=False))
    with ServerHandle(store) as handle:
        yield handle, store
    store.close()


#: raw byte blobs that must never produce a 5xx (a response is
#: optional — hanging up on unparseable input is fine; crashing is not)
CHAOS_BLOBS = [
    b"\x00\x01\x02\xff\xfe garbage\r\n\r\n",
    b"GARBAGE\r\n\r\n",
    b"GET\r\n\r\n",
    b"GET / SPDY/9\r\n\r\n",
    b"GET /query?name=boe&q=count(//w) HTTP/1.1\r\n"
    b"no-colon-header\r\n\r\n",
    b"POST /update HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    b"POST /update HTTP/1.1\r\nContent-Length: -3\r\n\r\n",
    b"POST /update HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    b"5\r\nhello\r\n0\r\n\r\n",
    b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n",
    b"GET / HTTP/1.1\r\n" + b"".join(
        b"X-%d: y\r\n" % index for index in range(150)) + b"\r\n",
    b"POST /update HTTP/1.1\r\nContent-Length: 7\r\n\r\n{nope!!",
]


class TestMalformedInputNever500:
    @pytest.mark.parametrize("blob", CHAOS_BLOBS,
                             ids=range(len(CHAOS_BLOBS)))
    def test_chaos_blob(self, fresh, blob):
        handle, _store = fresh
        with socket.create_connection((handle.host, handle.port),
                                      timeout=30) as sock:
            sock.sendall(blob)
            sock.shutdown(socket.SHUT_WR)
            raw = b""
            while True:
                block = sock.recv(65536)
                if not block:
                    break
                raw += block
        for line in raw.split(b"\r\n"):
            if line.startswith(b"HTTP/1.1 "):
                assert not line.split()[1].startswith(b"5"), line
        # the server survived
        assert handle.get_json("/healthz")[0] == 200

    def test_malformed_json_body_400(self, fresh):
        handle, _store = fresh
        status, _headers, body = handle.request(
            "POST", "/update", headers={"Content-Type": "application/"
                                                        "json"})
        assert status == 400
        connection = __import__("http.client", fromlist=["c"])
        conn = connection.HTTPConnection(handle.host, handle.port,
                                         timeout=30)
        conn.request("POST", "/update", body=b"{broken",
                     headers={"Content-Length": "7"})
        reply = conn.getresponse()
        payload = json.loads(reply.read())
        conn.close()
        assert reply.status == 400
        assert "invalid JSON body" in payload["error"]

    def test_json_array_body_400(self, fresh):
        handle, _store = fresh
        conn = __import__("http.client", fromlist=["c"]).HTTPConnection(
            handle.host, handle.port, timeout=30)
        conn.request("POST", "/update", body=b"[1,2,3]")
        reply = conn.getresponse()
        payload = json.loads(reply.read())
        conn.close()
        assert reply.status == 400
        assert "expected an object" in payload["error"]

    def test_malformed_xquery_400_with_parse_error(self, fresh):
        handle, _store = fresh
        status, payload = handle.get_json(
            "/query?name=boe&q=count(((")
        assert status == 400
        assert "parse error" in payload["error"]
        assert "line 1" in payload["error"]

    def test_malformed_update_statement_400(self, fresh):
        handle, _store = fresh
        status, payload = handle.post_json("/update", {
            "name": "boe", "statements": ["rename node w to"]})
        assert status == 400
        assert "error" in payload

    def test_bad_statement_types_400(self, fresh):
        handle, _store = fresh
        for statements in ([], [42], [""], {"not": "a list"}, None):
            status, payload = handle.post_json("/update", {
                "name": "boe", "statements": statements})
            assert status == 400, statements
            assert "statements" in payload["error"]

    def test_unknown_document_404(self, fresh):
        handle, _store = fresh
        status, payload = handle.get_json(
            "/query?name=ghost&q=count(//w)")
        assert status == 404
        assert "ghost" in payload["error"]

    def test_oversized_body_413(self, tmp_path):
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        with ServerHandle(store,
                          ServerConfig(body_limit=64)) as handle:
            conn = __import__("http.client",
                              fromlist=["c"]).HTTPConnection(
                handle.host, handle.port, timeout=30)
            conn.request("POST", "/update", body=b"x" * 200)
            reply = conn.getresponse()
            body = reply.read()
            conn.close()
            assert reply.status == 413
            assert b"64-byte limit" in body
        store.close()


class TestDisconnects:
    def test_mid_request_disconnect_counted(self, fresh):
        handle, _store = fresh
        before = handle.get_json("/statz")[1]["disconnects"]
        with socket.create_connection((handle.host, handle.port),
                                      timeout=30) as sock:
            sock.sendall(b"GET /query?name=boe&q=count(//w) HTTP/1.1"
                         b"\r\nX-Tenant: flake")  # no terminator
        wait_until(lambda: handle.get_json("/statz")[1]["disconnects"]
                   > before)
        assert handle.get_json("/healthz")[0] == 200

    def test_body_disconnect_counted(self, fresh):
        handle, _store = fresh
        before = handle.get_json("/statz")[1]["disconnects"]
        with socket.create_connection((handle.host, handle.port),
                                      timeout=30) as sock:
            sock.sendall(b"POST /update HTTP/1.1\r\n"
                         b"Content-Length: 500\r\n\r\n{\"name\"")
        wait_until(lambda: handle.get_json("/statz")[1]["disconnects"]
                   > before)
        assert handle.get_json("/healthz")[0] == 200

    def test_mid_stream_disconnect_leaves_server_healthy(self, fresh):
        handle, _store = fresh
        with socket.create_connection((handle.host, handle.port),
                                      timeout=30) as sock:
            sock.sendall(b"GET /query?name=boe&q=/descendant::*"
                         b"&stream=1 HTTP/1.1\r\n\r\n")
            sock.recv(64)  # read a sliver of the head, then vanish
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")
        assert handle.get_json("/healthz")[0] == 200
        status, payload = handle.get_json(
            "/query?name=boe&q=count(//w)")
        assert status == 200
        assert payload["items"] == ["6"]


class BlockGate:
    """Monkeypatch helper: the next /query executions block on a
    gate, making admission states (inflight, queued) deterministic."""

    def __init__(self, monkeypatch):
        self.gate = threading.Event()
        original = QueryService._query

        def slow(service, *call_args):
            assert self.gate.wait(timeout=60)
            return original(service, *call_args)

        monkeypatch.setattr(QueryService, "_query", slow)

    def release(self):
        self.gate.set()


class TestAdmissionControl:
    def test_queue_overflow_429(self, tmp_path, monkeypatch):
        gate = BlockGate(monkeypatch)
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        config = ServerConfig(max_inflight=1, max_queue=1)
        results: list[tuple[int, dict]] = []
        with ServerHandle(store, config) as handle:
            def issue():
                results.append(handle.get_json(
                    "/query?name=boe&q=count(//w)"))

            first = threading.Thread(target=issue)
            first.start()
            wait_until(lambda: handle.get_json(
                "/statz")[1]["inflight"] == 1)
            second = threading.Thread(target=issue)
            second.start()
            wait_until(lambda: handle.get_json(
                "/statz")[1]["queued"] == 1)
            # slot busy + queue full: the third must bounce, not wait
            status, headers, body = handle.request(
                "GET", "/query?name=boe&q=count(//w)")
            assert status == 429
            assert headers["retry-after"] == "1"
            assert b"queue is full" in body
            gate.release()
            first.join(timeout=60)
            second.join(timeout=60)
            assert [status for status, _payload in results] \
                == [200, 200]
            stats = handle.get_json("/statz")[1]
            assert stats["rejected_queue"] == 1
            assert stats["inflight"] == 0
            assert stats["queued"] == 0
        store.close()

    def test_quota_exhaustion_429(self, tmp_path):
        clock = [100.0]
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        config = ServerConfig(tenant_qps=1.0, tenant_burst=1.0,
                              clock=lambda: clock[0])
        with ServerHandle(store, config) as handle:
            probe = "/query?name=boe&q=count(//w)"
            acme = {"X-Tenant": "acme"}
            assert handle.get_json(probe, headers=acme)[0] == 200
            status, headers, body = handle.request(
                "GET", probe, headers=acme)
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert b"'acme' is over its query rate" in body
            # an unrelated tenant has its own bucket
            assert handle.get_json(
                probe, headers={"X-Tenant": "other"})[0] == 200
            # time refills the bucket
            clock[0] += 1.0
            assert handle.get_json(probe, headers=acme)[0] == 200
            stats = handle.get_json("/statz")[1]
            assert stats["rejected_quota"] == 1
            assert stats["tenants"]["acme"]["rejected"] == 1
            assert stats["tenants"]["acme"]["served"] == 2
            assert stats["quota"]["enabled"] is True
            assert stats["tenants"]["acme"]["tokens"] is not None
        store.close()

    def test_statz_exempt_from_quota(self, tmp_path):
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        config = ServerConfig(tenant_qps=1.0, tenant_burst=1.0,
                              clock=lambda: 42.0)
        with ServerHandle(store, config) as handle:
            for _round in range(5):
                assert handle.get_json("/statz")[0] == 200
                assert handle.get_json("/healthz")[0] == 200
        store.close()


class TestDrain:
    def test_drain_finishes_inflight_requests(self, tmp_path,
                                              monkeypatch):
        gate = BlockGate(monkeypatch)
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        handle = ServerHandle(store)
        results: list[tuple[int, dict]] = []

        def issue():
            results.append(handle.get_json(
                "/query?name=boe&q=count(//w)"))

        worker = threading.Thread(target=issue)
        worker.start()
        wait_until(lambda: handle.get_json(
            "/statz")[1]["inflight"] == 1)
        # a kept-alive connection opened before the drain begins
        bystander = socket.create_connection(
            (handle.host, handle.port), timeout=30)
        stream = bystander.makefile("rb")
        # one exchange first, so the loop has accepted the connection
        # before the drain closes the listener
        bystander.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert read_response(stream)[0] == 200
        drainer = threading.Thread(target=handle.drain)
        drainer.start()
        wait_until(lambda: handle.server.draining)
        # new work on the old connection is refused while draining
        bystander.sendall(b"GET /query?name=boe&q=count(//w) "
                          b"HTTP/1.1\r\n\r\n")
        status, headers, body = read_response(stream)
        assert status == 503
        assert b"draining" in body
        assert headers["connection"] == "close"
        bystander.close()
        # ...but the admitted request completes with its real result
        gate.release()
        drainer.join(timeout=60)
        worker.join(timeout=60)
        assert results == [(200, {
            "items": ["6"], "name": "boe", "next": None, "offset": 0,
            "snapshot_version": store.snapshot("boe").version,
            "total": 1})]
        # post-drain: the listener is gone
        with pytest.raises(OSError):
            socket.create_connection((handle.host, handle.port),
                                     timeout=5)
        handle.close()
        store.close()

    def test_drain_is_idempotent(self, fresh):
        handle, _store = fresh
        handle.get_json("/healthz")
        handle.drain()
        handle.drain()

    def test_sigterm_drains_subprocess(self, tmp_path):
        root = tmp_path / "catalog"
        store = DocumentStore.init(root)
        store.add("boe", boethius_document(validate=False))
        store.close()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--root", str(root), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            banner = process.stdout.readline()
            assert banner.startswith("serving on http://")
            address = banner.split()[2].removeprefix("http://")
            host, _, port = address.partition(":")
            statuses: list[int] = []

            def issue():
                import http.client
                conn = http.client.HTTPConnection(host, int(port),
                                                  timeout=60)
                conn.request(
                    "GET", "/query?name=boe&q=count(/descendant::*)")
                statuses.append(conn.getresponse().status)
                conn.close()

            worker = threading.Thread(target=issue)
            worker.start()
            worker.join(timeout=60)
            process.send_signal(signal.SIGTERM)
            out, _err = process.communicate(timeout=60)
            assert process.returncode == 0
            assert "draining:" in out
            assert "drained; served" in out
            assert statuses == [200]
        finally:
            if process.poll() is None:  # pragma: no cover
                process.kill()

    def test_drain_leaves_no_unpublished_fork(self, tmp_path,
                                              monkeypatch):
        """A drain racing an in-flight update must still leave the
        store clean: the published version matches the applied work
        and recovery finds nothing to sweep."""
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        handle = ServerHandle(store)
        results: list[int] = []

        def write():
            results.append(handle.post_json("/update", {
                "name": "boe",
                "statements": [
                    'rename node /descendant::w[1] as "wx"']})[0])

        worker = threading.Thread(target=write)
        worker.start()
        worker.join(timeout=60)
        handle.drain()
        handle.close()
        assert results == [200]
        snapshot = store.snapshot("boe")
        snapshot.engine.goddag.check_invariants()
        assert snapshot.query(
            "count(/descendant::wx)").strings() == ["1"]
        store.close()
        # a fresh open sees exactly the published state, no leftovers
        reopened = DocumentStore(tmp_path / "catalog")
        assert reopened.recovery["swept"] == []
        assert reopened.recovery["quarantined"] == []
        assert reopened.snapshot("boe").query(
            "count(/descendant::wx)").strings() == ["1"]
        reopened.close()


class TestStoreStaysClean:
    def test_failed_updates_leave_version_unchanged(self, fresh):
        handle, store = fresh
        before = store.snapshot("boe").version
        for payload in (
            {"name": "boe", "statements": ["rename node w to"]},
            {"name": "boe", "statements": ["delete node ((("]},
            {"name": "ghost", "statements": ["delete node //x[1]"]},
        ):
            status, _body = handle.post_json("/update", payload)
            assert status in (400, 404)
        snapshot = store.snapshot("boe")
        assert snapshot.version == before
        snapshot.engine.goddag.check_invariants()
        # the document still answers queries, over HTTP too
        status, payload = handle.get_json(
            "/query?name=boe&q=count(//w)")
        assert (status, payload["items"]) == (200, ["6"])

    def test_chaos_then_update_then_verify(self, fresh):
        handle, store = fresh
        for blob in CHAOS_BLOBS[:4]:
            with socket.create_connection(
                    (handle.host, handle.port), timeout=30) as sock:
                sock.sendall(blob)
                sock.shutdown(socket.SHUT_WR)
                while sock.recv(65536):
                    pass
        status, payload = handle.post_json("/update", {
            "name": "boe",
            "statements": [
                'insert node <note>ok</note> after /descendant::w[1]',
            ]})
        assert status == 200
        assert payload["applied"] == 1
        assert all(value.startswith("ok")
                   for value in store.verify().values())

    def test_retired_versions_are_collectable(self, fresh):
        """The soak's RSS bound, stated exactly: each update retires
        one MVCC version, and retired versions must be garbage — the
        store releases their numpy object-array caches (which the
        cycle collector cannot see through) at publish time."""
        import gc
        import weakref

        handle, store = fresh
        retired = []
        for index in range(6):
            statement = (
                'rename node /descendant::w[1] as "wx"'
                if index % 2 == 0 else
                'rename node /descendant::wx[1] as "w"')
            status, _payload = handle.post_json("/update", {
                "name": "boe", "statements": [statement]})
            assert status == 200
            # query through HTTP so the new version builds its caches
            status, _payload = handle.get_json(
                "/query?name=boe&q=count(//w)")
            assert status == 200
            retired.append(weakref.ref(
                store.snapshot("boe").engine.goddag))
        gc.collect()
        alive = [ref for ref in retired if ref() is not None]
        # only the currently published version may survive
        assert len(alive) <= 1, (
            f"{len(alive)} of {len(retired)} retired MVCC versions "
            f"still resident after gc")
        assert retired[-1]() is not None  # the live one, still served
        status, payload = handle.get_json(
            "/query?name=boe&q=count(//w)")
        assert (status, payload["items"]) == (200, ["6"])
