"""Tests for the overlap analytics module."""

from __future__ import annotations

from repro.analysis import OverlapPair, analyze_overlap, split_elements
from repro.core.goddag import KyGoddag
from repro.corpus import GeneratorConfig, generate_document
from repro.corpus.boethius import boethius_document


class TestBoethiusProfile:
    def test_counts(self, goddag):
        report = analyze_overlap(goddag)
        assert report.text_length == 51
        assert report.element_count == 16
        assert report.leaf_count == 16
        assert report.hierarchy_names == [
            "physical", "structural", "restoration", "damage"]

    def test_known_overlaps(self, goddag):
        report = analyze_overlap(goddag)
        # singallice × both lines; res spans × lines/words; dmg2 × gecynde.
        assert report.pair_count("line", "w") == 2
        assert report.pair_count("dmg", "w") == 1
        assert report.pair_count("w", "line") == 2  # unordered lookup

    def test_unknown_pair_is_zero(self, goddag):
        # vline2 [24,49) properly crosses both lines ([0,27) and [27,51)).
        assert analyze_overlap(goddag).pair_count("line", "vline") == 2
        assert analyze_overlap(goddag).pair_count("dmg", "dmg") == 0

    def test_accepts_document(self):
        report = analyze_overlap(boethius_document(validate=False))
        assert report.element_count == 16

    def test_rows_printable(self, goddag):
        rows = dict(analyze_overlap(goddag).rows())
        assert rows["elements"] == "16"
        assert "overlap line × w" in rows

    def test_rates(self, goddag):
        report = analyze_overlap(goddag)
        assert 0.0 < report.overlap_rate <= 1.0
        assert report.leaves_per_element == 1.0  # 16 leaves / 16 elements


class TestSplitElements:
    def test_singallice_is_split(self, goddag):
        split = split_elements(goddag, "w", "line")
        assert [w.string_value() for w in split] == ["singallice"]

    def test_no_splits_without_overlap(self):
        document = generate_document(GeneratorConfig(
            n_words=60, seed=5, hyphenation_rate=0.0,
            boundary_cross_rate=0.0, damage_rate=0.0,
            restoration_rate=0.0))
        goddag = KyGoddag.build(document)
        assert split_elements(goddag, "w", "line") == []

    def test_symmetric_counts(self, goddag):
        report = analyze_overlap(goddag)
        lines_split = split_elements(goddag, "line", "w")
        words_split = split_elements(goddag, "w", "line")
        # one word crossing two lines: 2 pairs, 2 lines, 1 word
        assert report.pair_count("line", "w") == 2
        assert len(lines_split) == 2
        assert len(words_split) == 1


class TestSyntheticSweep:
    def test_overlap_grows_with_rates(self):
        def rate_at(rate: float) -> float:
            document = generate_document(GeneratorConfig(
                n_words=200, seed=9, hyphenation_rate=rate,
                boundary_cross_rate=rate))
            return analyze_overlap(document).overlap_rate

        assert rate_at(0.8) > rate_at(0.0)

    def test_pairs_sorted_and_unordered(self):
        document = generate_document(GeneratorConfig(n_words=150, seed=3))
        report = analyze_overlap(document)
        for pair in report.pairs:
            assert isinstance(pair, OverlapPair)
            assert pair.left_name <= pair.right_name
            assert pair.count > 0
