"""Tests for corpus sharding (DESIGN.md §13).

Cut selection (cuts valid in *every* hierarchy, size-balanced pick),
shard construction (per-shard documents stay aligned, elements never
split), the pruning statistics, and the fused reconstruction being a
byte-identical inverse of sharding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreError
from repro.cmh import Hierarchy, MultihierarchicalDocument
from repro.corpus.boethius import boethius_document
from repro.corpus.generator import GeneratorConfig, generate_document
from repro.store import fuse_documents, shard_document, valid_cuts
from repro.store.sharding import CorpusStats, ShardStats, choose_cuts


def corpus(n_words: int = 400, seed: int = 7) -> MultihierarchicalDocument:
    return generate_document(GeneratorConfig(n_words=n_words, seed=seed))


class TestValidCuts:
    def test_no_element_straddles_any_cut(self):
        document = corpus()
        cuts = valid_cuts(document)
        assert len(cuts)
        for hierarchy in document.hierarchies.values():
            for lo, hi in _element_spans(hierarchy, document.text):
                inside = cuts[(cuts > lo) & (cuts < hi)]
                assert not len(inside), (lo, hi, inside[:3])

    def test_cuts_are_interior(self):
        document = corpus()
        cuts = valid_cuts(document)
        assert np.all(cuts > 0)
        assert np.all(cuts < len(document.text))

    def test_overlap_free_document_cuts_at_word_boundaries(self):
        text = "ab cd ef"
        document = MultihierarchicalDocument(text)
        source = "<r><w>ab</w> <w>cd</w> <w>ef</w></r>"
        document.add_hierarchy(Hierarchy("only", _parse(source)))
        cuts = valid_cuts(document)
        # every word boundary (starts 3 and 6, ends 2 and 5) is valid
        assert set(cuts.tolist()) == {2, 3, 5, 6}

    def test_straddling_span_blocks_cut(self):
        text = "ab cd ef"
        document = MultihierarchicalDocument(text)
        document.add_hierarchy(Hierarchy(
            "words", _parse("<r><w>ab</w> <w>cd</w> <w>ef</w></r>")))
        document.add_hierarchy(Hierarchy(
            "span", _parse("<r>a<dmg>b cd e</dmg>f</r>")))
        cuts = valid_cuts(document)
        # the dmg span [1, 7) swallows every word boundary
        assert not len(cuts)


class TestChooseCuts:
    def test_balanced_partition(self):
        document = corpus(800)
        cuts = choose_cuts(document, 4)
        assert len(cuts) == 3
        bounds = [0, *cuts, len(document.text)]
        sizes = [hi - lo for lo, hi in zip(bounds, bounds[1:])]
        target = len(document.text) / 4
        for size in sizes:
            assert abs(size - target) < target * 0.5

    def test_single_shard_no_cuts(self):
        assert choose_cuts(corpus(), 1) == []

    def test_invalid_count_rejected(self):
        with pytest.raises(StoreError, match="shard count"):
            choose_cuts(corpus(), 0)

    def test_more_shards_than_cuts_degrades(self):
        text = "ab cd"
        document = MultihierarchicalDocument(text)
        document.add_hierarchy(Hierarchy(
            "words", _parse("<r><w>ab</w> <w>cd</w></r>")))
        cuts = choose_cuts(document, 10)
        assert len(cuts) <= 2  # only positions 2 and 3 are valid


class TestShardDocument:
    def test_shards_align_and_cover_text(self):
        document = corpus(800)
        shards, stats = shard_document(document, 4)
        assert len(shards) == len(stats.shards) == 4
        assert "".join(shard.text for shard in shards) == document.text
        for shard in shards:  # add_hierarchy verified alignment already
            assert shard.hierarchy_names == document.hierarchy_names

    def test_stats_bounds_and_cards(self):
        document = corpus()
        shards, stats = shard_document(document, 4)
        assert stats.root_name == document.root_name
        assert stats.words == sum(s.words for s in stats.shards)
        for shard, stat in zip(shards, stats.shards):
            assert stat.chars == len(shard.text)
            counted: dict[str, int] = {}
            for hierarchy in shard.hierarchies.values():
                for node in hierarchy.root.iter_elements():
                    counted[node.name] = counted.get(node.name, 0) + 1
            assert counted == stat.cards

    def test_element_totals_preserved(self):
        document = corpus()
        shards, stats = shard_document(document, 6)
        for name, hierarchy in document.hierarchies.items():
            total = sum(1 for _ in hierarchy.root.iter_elements())
            sharded = sum(
                1 for shard in shards
                for _ in shard[name].root.iter_elements())
            assert sharded == total, name

    def test_no_hierarchies_rejected(self):
        with pytest.raises(StoreError, match="no hierarchies"):
            shard_document(MultihierarchicalDocument("abc"), 2)

    def test_boethius_shards(self):
        document = boethius_document(validate=False)
        shards, stats = shard_document(document, 2)
        assert len(shards) >= 1
        assert fuse_documents(shards).text == document.text


class TestFuse:
    def test_fuse_is_inverse_of_shard(self):
        document = corpus()
        shards, _stats = shard_document(document, 5)
        fused = fuse_documents(shards)
        assert fused.text == document.text
        for name in document.hierarchy_names:
            assert fused[name].to_xml() == document[name].to_xml()

    def test_fuse_empty_rejected(self):
        with pytest.raises(StoreError, match="empty shard list"):
            fuse_documents([])


class TestStatsJson:
    def test_round_trip(self):
        _shards, stats = shard_document(corpus(), 3)
        restored = CorpusStats.from_json(stats.to_json())
        assert restored.to_json() == stats.to_json()
        assert restored.root_name == stats.root_name
        assert restored.name_hierarchies == stats.name_hierarchies
        assert [s.to_json() for s in restored.shards] \
            == [s.to_json() for s in stats.shards]

    def test_shard_stats_fields(self):
        stat = ShardStats(lo=3, hi=9, words=2, cards={"w": 2})
        assert stat.chars == 6
        assert ShardStats.from_json(stat.to_json()).to_json() \
            == stat.to_json()


def _parse(source: str):
    from repro.markup.parser import parse

    return parse(source)


def _element_spans(hierarchy: Hierarchy, text: str):
    """(start, end) character spans of every element, via leaf walk."""
    spans = []

    def walk(node, cursor):
        from repro.markup import dom

        start = cursor
        for child in node.children:
            if isinstance(child, dom.Text):
                cursor += len(child.data)
            elif isinstance(child, dom.Element):
                cursor = walk(child, cursor)
        if node is not hierarchy.root:
            spans.append((start, cursor))
        return cursor

    walk(hierarchy.root, 0)
    return spans
