"""Crash safety and corruption resilience of the document store
(DESIGN.md §12).

The centerpiece is the crash-consistency matrix: every file-mutating
syscall under ``add``/``update``/``remove``/``compact`` is a numbered
crash point (via the :mod:`repro.store.faultfs` injectable OS layer);
for each point the store is killed mid-operation, reopened, and every
non-quarantined document must deserialize byte-identically to either
its pre- or post-operation version.  Around it: recovery semantics
(tmp sweep, orphan adoption, newer-version adoption, quarantine of
corrupt/missing files, manifest generation fallback), durability
policies, the transactional persist-then-publish rollback, per-document
``compact`` statuses, and a randomized crash fuzz whose round count
scales up in the nightly CI job.
"""

from __future__ import annotations

import json
import os
import random
import shutil

import pytest

from repro.api import Engine
from repro.errors import IntegrityError, ReproError, StoreError
from repro.cli import main
from repro.corpus.boethius import boethius_document
from repro.store import (
    DocumentStore,
    read_header,
    save_engine,
    verify_blocks,
)
from repro.store.catalog import MANIFEST_NAME, MANIFEST_PREV_NAME
from repro.store.faultfs import FaultyOs, SimulatedCrash, inject


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def store_xml(store: DocumentStore, name: str) -> dict[str, str]:
    """Canonical content of one document: per-hierarchy XML."""
    document = store.snapshot(name).engine.document
    return {hier_name: hierarchy.to_xml() for hier_name, hierarchy
            in document.hierarchies.items()}


def flip_block_byte(path, which: int = -1) -> str:
    """Flip one bit inside a real array block (never in alignment
    padding, which is not checksummed); returns the block's name."""
    header, data_start = read_header(path)
    entries = sorted(header["arrays"].items(),
                     key=lambda item: item[1]["offset"])
    name, entry = entries[which]
    payload = bytearray(path.read_bytes())
    payload[data_start + entry["offset"]] ^= 0x01
    path.write_bytes(payload)
    return name


def fresh_store(root) -> DocumentStore:
    store = DocumentStore.init(root)
    store.add("boe", boethius_document(validate=False))
    return store


# ---------------------------------------------------------------------------
# faultfs unit behavior
# ---------------------------------------------------------------------------


class TestFaultFs:
    def test_counting_layer_sees_every_op(self, tmp_path):
        layer = FaultyOs()
        with inject(layer):
            fresh_store(tmp_path / "cat")
        ops = {op for op, _target in layer.log}
        assert {"open", "write", "fsync", "replace",
                "fsync_dir"} <= ops
        assert layer.ops == len(layer.log)

    def test_crash_kills_the_layer_permanently(self, tmp_path):
        layer = FaultyOs(crash_at=3)
        with inject(layer):
            with pytest.raises(SimulatedCrash):
                fresh_store(tmp_path / "cat")
            with pytest.raises(SimulatedCrash):
                layer.replace(tmp_path / "a", tmp_path / "b")

    def test_torn_write_flushes_a_prefix(self, tmp_path):
        target = tmp_path / "torn.bin"
        layer = FaultyOs(crash_at=2, torn=True)
        handle = layer.open_for_write(target)
        with pytest.raises(SimulatedCrash, match="write-torn"):
            layer.write(handle, b"0123456789abcdef")
        handle.close()
        assert target.read_bytes() == b"01234567"

    def test_error_injection_fires_once(self, tmp_path):
        layer = FaultyOs(fail={"fsync": OSError("disk full")})
        handle = layer.open_for_write(tmp_path / "x")
        layer.write(handle, b"data")
        with pytest.raises(OSError, match="disk full"):
            layer.fsync(handle)
        layer.fsync(handle)  # the layer survives injected errors
        handle.close()


# ---------------------------------------------------------------------------
# the crash-consistency matrix
# ---------------------------------------------------------------------------

#: the store operations under test, as (label, callable(store))
OPERATIONS = [
    ("update", lambda store: store.update(
        "boe", 'rename node /descendant::w[1] as "word"')),
    ("add", lambda store: store.add(
        "extra", boethius_document(validate=False))),
    ("remove", lambda store: store.remove("boe")),
    ("compact", lambda store: store.compact()),
]


def snapshot_states(root, template) -> tuple[dict, dict]:
    """(pre, post) canonical XML per document for one operation."""
    shutil.rmtree(root, ignore_errors=True)
    shutil.copytree(template, root)
    store = DocumentStore(root)
    pre = {name: store_xml(store, name) for name in store.names}
    return store, pre


def run_crash_matrix(tmp_path, label, operation, torn: bool):
    """Kill ``operation`` at every injected crash point; after each,
    the reopened store must serve every non-quarantined document at
    exactly the old or the new version."""
    template = tmp_path / "template"
    fresh_store(template)

    # learn the op schedule and the post-operation state
    probe_root = tmp_path / "probe"
    store, pre = snapshot_states(probe_root, template)
    counting = FaultyOs()
    with inject(counting):
        operation(store)
    post = {name: store_xml(store, name) for name in store.names}
    total_ops = counting.ops
    assert total_ops > 0, f"{label} performed no routed OS ops"

    crash_root = tmp_path / "crash"
    for crash_at in range(1, total_ops + 1):
        store, _pre = snapshot_states(crash_root, template)
        with inject(FaultyOs(crash_at=crash_at, torn=torn)):
            with pytest.raises(SimulatedCrash):
                operation(store)
        reopened = DocumentStore(crash_root)
        for name in reopened.names:
            observed = store_xml(reopened, name)
            assert observed in (pre.get(name), post.get(name)), (
                f"{label} crash point {crash_at}/{total_ops} "
                f"(torn={torn}): document {name!r} is neither the old "
                f"nor the new version")
        assert reopened.quarantined == {}, (
            f"{label} crash point {crash_at} (torn={torn}) quarantined "
            f"{list(reopened.quarantined)} — crashes must never look "
            f"like corruption")
    return total_ops


class TestCrashMatrix:
    @pytest.mark.parametrize("label,operation", OPERATIONS,
                             ids=[label for label, _ in OPERATIONS])
    def test_clean_crash_at_every_point(self, tmp_path, label,
                                        operation):
        run_crash_matrix(tmp_path, label, operation, torn=False)

    @pytest.mark.parametrize("label,operation", OPERATIONS,
                             ids=[label for label, _ in OPERATIONS])
    def test_torn_write_crash_at_every_point(self, tmp_path, label,
                                             operation):
        run_crash_matrix(tmp_path, label, operation, torn=True)

    def test_randomized_crash_fuzz(self, tmp_path):
        """Random statement batches × random crash points (the nightly
        job raises ``REPRO_CRASH_FUZZ_ROUNDS``)."""
        rounds = int(os.environ.get("REPRO_CRASH_FUZZ_ROUNDS", "5"))
        rng = random.Random(20060627)
        statements = [
            'rename node /descendant::w[1] as "word"',
            'insert node <note>n</note> after /descendant::w[2]',
            'replace value of node /descendant::w[3] with "si"',
            'delete node /descendant::note[1]',
        ]
        template = tmp_path / "template"
        fresh_store(template)
        work = tmp_path / "work"
        for round_index in range(rounds):
            batch = [rng.choice(statements)
                     for _ in range(rng.randint(1, 3))]
            store, pre = snapshot_states(work, template)
            counting = FaultyOs()
            try:
                with inject(counting):
                    store.update("boe", batch)
            except ReproError:
                continue  # statement invalid against this state: the
                # batch aborts before any file op; nothing to crash
            post = {"boe": store_xml(store, "boe")}
            store, _pre = snapshot_states(work, template)
            crash_at = rng.randint(1, counting.ops)
            with inject(FaultyOs(crash_at=crash_at,
                                 torn=rng.random() < 0.5)):
                with pytest.raises(SimulatedCrash):
                    store.update("boe", batch)
            reopened = DocumentStore(work)
            assert reopened.quarantined == {}
            observed = store_xml(reopened, "boe")
            assert observed in (pre["boe"], post["boe"]), (
                f"fuzz round {round_index}: crash at op {crash_at} of "
                f"{counting.ops} left 'boe' at a torn version")


# ---------------------------------------------------------------------------
# recovery semantics
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_tmp_litter_is_swept(self, tmp_path):
        root = tmp_path / "cat"
        fresh_store(root)
        (root / "boe.mhxb.tmp").write_bytes(b"half a save")
        (root / "store.json.tmp").write_text("{}")
        store = DocumentStore(root)
        assert sorted(store.recovery["swept"]) == [
            "boe.mhxb.tmp", "store.json.tmp"]
        assert not (root / "boe.mhxb.tmp").exists()

    def test_orphan_mhxb_is_adopted(self, tmp_path):
        root = tmp_path / "cat"
        fresh_store(root)
        engine = Engine(boethius_document(validate=False))
        save_engine(engine, root / "orphan.mhxb")
        store = DocumentStore(root)
        assert "orphan" in store.names
        assert any(item.startswith("orphan")
                   for item in store.recovery["adopted"])
        assert store.query("orphan",
                           "count(/descendant::w)").serialize() == "6"

    def test_newer_file_version_is_adopted(self, tmp_path):
        """Crash after the data-file rename but before the manifest
        write: the file's header version is authoritative."""
        root = tmp_path / "cat"
        store = fresh_store(root)
        manifest_before = (root / MANIFEST_NAME).read_text()
        engine = Engine(boethius_document(validate=False))
        engine.update('rename node /descendant::w[1] as "word"')
        save_engine(engine, root / "boe.mhxb")  # newer data, old manifest
        (root / MANIFEST_NAME).write_text(manifest_before)
        reopened = DocumentStore(root)
        assert any(item.startswith("boe")
                   for item in reopened.recovery["adopted"])
        assert reopened.snapshot("boe").version == engine.version
        assert reopened.query("boe",
                              "count(//word)").serialize() == "1"
        del store

    def test_missing_file_quarantines_not_fails(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        store.add("keep", boethius_document(validate=False))
        (root / "boe.mhxb").unlink()
        reopened = DocumentStore(root)
        assert "boe" in reopened.recovery["quarantined"]
        assert reopened.names == ["keep"]
        assert "missing" in reopened.quarantined["boe"]["reason"]
        with pytest.raises(StoreError, match="quarantined"):
            reopened.snapshot("boe")
        # the healthy document still serves
        assert reopened.query("keep",
                              "count(/descendant::w)").serialize() == "6"

    def test_corrupt_header_quarantines(self, tmp_path):
        root = tmp_path / "cat"
        fresh_store(root)
        payload = bytearray((root / "boe.mhxb").read_bytes())
        payload[20] ^= 0xFF  # inside the header JSON
        (root / "boe.mhxb").write_bytes(payload)
        reopened = DocumentStore(root)
        assert "boe" in reopened.quarantined
        with pytest.raises(StoreError, match="quarantined"):
            reopened.query("boe", "1")

    def test_manifest_falls_back_to_previous_generation(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        store.update("boe", 'rename node /descendant::w[1] as "word"')
        assert (root / MANIFEST_PREV_NAME).exists()
        (root / MANIFEST_NAME).write_text("{corrupt json", "utf-8")
        reopened = DocumentStore(root)
        assert reopened.recovery["manifest"] == MANIFEST_PREV_NAME
        # the prev manifest lags the data file; recovery adopts forward
        assert reopened.query("boe", "count(//word)").serialize() == "1"
        # recovery re-saved a fresh, valid store.json
        current = json.loads((root / MANIFEST_NAME).read_text())
        assert current["documents"]["boe"]["version"] == \
            reopened.snapshot("boe").version

    def test_generation_increases_monotonically(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        first = json.loads((root / MANIFEST_NAME).read_text())
        store.update("boe", 'rename node /descendant::w[1] as "word"')
        second = json.loads((root / MANIFEST_NAME).read_text())
        previous = json.loads((root / MANIFEST_PREV_NAME).read_text())
        assert second["generation"] > first["generation"]
        assert previous["generation"] < second["generation"]

    def test_remove_clears_quarantine(self, tmp_path):
        root = tmp_path / "cat"
        fresh_store(root)
        (root / "boe.mhxb").unlink()
        reopened = DocumentStore(root)
        assert "boe" in reopened.quarantined
        reopened.remove("boe")
        assert reopened.quarantined == {}
        assert DocumentStore(root).quarantined == {}


# ---------------------------------------------------------------------------
# corruption detection end to end
# ---------------------------------------------------------------------------


class TestCorruption:
    def test_bit_flip_is_quarantined_not_served(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        store.add("keep", boethius_document(validate=False))
        del store
        flip_block_byte(root / "boe.mhxb")
        reopened = DocumentStore(root)  # header is fine: opens clean
        assert "boe" in reopened.names
        with pytest.raises(StoreError, match="quarantined"):
            reopened.query("boe", "count(/descendant::w)")
        assert "boe" in reopened.quarantined
        assert "CRC32 mismatch" in reopened.quarantined["boe"]["reason"]
        # the quarantine is durable and the rest of the store serves
        third = DocumentStore(root)
        assert "boe" in third.quarantined
        assert third.query("keep",
                           "count(/descendant::w)").serialize() == "6"

    def test_verify_reports_block_and_quarantine(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        store.add("bad", boethius_document(validate=False))
        statuses = store.verify()
        assert all(status.startswith("ok (") for status
                   in statuses.values())
        block = flip_block_byte(root / "bad.mhxb")
        statuses = store.verify()
        assert statuses["boe"].startswith("ok (")
        assert statuses["bad"].startswith("corrupt:")
        assert block in statuses["bad"]
        with pytest.raises(ReproError, match="no document"):
            store.verify("nope")

    def test_unverified_loads_allowed_when_opted_out(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        del store
        lax = DocumentStore(root, verify_cold_loads=False)
        assert lax.query("boe",
                         "count(/descendant::w)").serialize() == "6"


# ---------------------------------------------------------------------------
# transactional persist-then-publish (satellite: the ordering bug)
# ---------------------------------------------------------------------------


def manifest_publish_op(tmp_path, template, operation) -> int:
    """Op index (1-based) of the manifest's publishing ``replace``,
    learned from a counting run on a throwaway copy of ``template``."""
    probe = tmp_path / "rollback-probe"
    shutil.rmtree(probe, ignore_errors=True)
    shutil.copytree(template, probe)
    store = DocumentStore(probe)
    counting = FaultyOs()
    with inject(counting):
        operation(store)
    for index, (op, target) in enumerate(counting.log, start=1):
        if op == "replace" and target.endswith(MANIFEST_NAME):
            return index
    raise AssertionError("operation never published the manifest")


class TestPersistRollback:
    def test_manifest_failure_rolls_back_update(self, tmp_path):
        """``save_engine`` lands, then the manifest write fails: the
        fork must NOT publish and the in-memory catalog must roll back
        to what ``store.json`` actually says."""
        template = tmp_path / "template"
        fresh_store(template)

        def operation(store):
            store.update("boe",
                         'rename node /descendant::w[1] as "word"')

        index = manifest_publish_op(tmp_path, template, operation)
        root = tmp_path / "cat"
        shutil.copytree(template, root)
        store = DocumentStore(root)
        version = store.snapshot("boe").version
        layer = FaultyOs(fail_at={index: OSError("EIO on manifest")})
        with inject(layer):
            with pytest.raises(OSError, match="EIO on manifest"):
                operation(store)
        entry = store._manifest["documents"]["boe"]
        on_disk = json.loads((root / MANIFEST_NAME).read_text())
        assert entry == on_disk["documents"]["boe"]
        assert entry["version"] == version
        # the store still serves a consistent old-or-new version
        assert store.query("boe", "count(//word)").serialize() in (
            "0", "1")

    def test_manifest_failure_rolls_back_add(self, tmp_path):
        template = tmp_path / "template"
        fresh_store(template)

        def operation(store):
            store.add("extra", boethius_document(validate=False))

        index = manifest_publish_op(tmp_path, template, operation)
        root = tmp_path / "cat"
        shutil.copytree(template, root)
        store = DocumentStore(root)
        layer = FaultyOs(fail_at={index: OSError("EIO on manifest")})
        with inject(layer):
            with pytest.raises(OSError, match="EIO on manifest"):
                operation(store)
        assert "extra" not in store
        assert not (root / "extra.mhxb").exists()
        reopened = DocumentStore(root)
        assert reopened.names == ["boe"]
        assert reopened.recovery["adopted"] == []

    def test_save_engine_failure_keeps_old_state(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        version = store.snapshot("boe").version
        layer = FaultyOs(fail={"open": OSError("ENOSPC")})
        with inject(layer):
            with pytest.raises(OSError, match="ENOSPC"):
                store.update("boe",
                             'rename node /descendant::w[1] as "word"')
        assert store.snapshot("boe").version == version
        assert store.query("boe", "count(//word)").serialize() == "0"


# ---------------------------------------------------------------------------
# compact: skip-and-report (satellite)
# ---------------------------------------------------------------------------


class TestCompactStatuses:
    def test_missing_file_skips_without_aborting(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        store.add("second", boethius_document(validate=False))
        store.add("third", boethius_document(validate=False))
        del store
        (root / "second.mhxb").unlink()
        cold = DocumentStore(root, durability="off")
        # delete again behind recovery's back to hit compact's own path
        cold._manifest["documents"]["second"] = {
            "file": "second.mhxb", "version": 4}
        sizes = cold.compact()
        assert isinstance(sizes["boe"], int)
        assert isinstance(sizes["third"], int)
        assert isinstance(sizes["second"], str)
        assert sizes["second"].startswith("skipped:")

    def test_corrupt_cold_entry_skips_and_reports(self, tmp_path):
        root = tmp_path / "cat"
        store = fresh_store(root)
        store.add("second", boethius_document(validate=False))
        del store
        flip_block_byte(root / "second.mhxb")
        cold = DocumentStore(root)
        sizes = cold.compact()
        assert isinstance(sizes["boe"], int)
        assert sizes["second"].startswith("skipped:")
        assert "second" in cold.quarantined


# ---------------------------------------------------------------------------
# durability policies
# ---------------------------------------------------------------------------


class TestDurability:
    @pytest.mark.parametrize("mode", ["full", "batch", "off"])
    def test_all_policies_round_trip(self, tmp_path, mode):
        root = tmp_path / f"cat-{mode}"
        store = DocumentStore.init(root, durability=mode)
        store.add("boe", boethius_document(validate=False))
        store.update("boe", 'rename node /descendant::w[1] as "word"')
        reopened = DocumentStore(root, durability=mode)
        assert reopened.query("boe", "count(//word)").serialize() == "1"

    def test_full_fsyncs_every_commit(self, tmp_path):
        layer = FaultyOs()
        with inject(layer):
            store = DocumentStore.init(tmp_path / "cat",
                                       durability="full")
            store.add("boe", boethius_document(validate=False))
        assert any(op == "fsync" for op, _ in layer.log)
        assert any(op == "fsync_dir" for op, _ in layer.log)

    def test_batch_defers_syncs_until_sync(self, tmp_path):
        store = DocumentStore.init(tmp_path / "cat", durability="batch")
        layer = FaultyOs()
        with inject(layer):
            store.add("boe", boethius_document(validate=False))
            assert not any(op.startswith("fsync")
                           for op, _ in layer.log)
            assert store._dirty
            synced = store.sync()
        assert synced >= 2  # the data file and the manifest
        assert not store._dirty
        assert any(op == "fsync" for op, _ in layer.log)

    def test_off_never_syncs(self, tmp_path):
        # init() itself is always durable; only watch the workload
        store = DocumentStore.init(tmp_path / "cat", durability="off")
        layer = FaultyOs()
        with inject(layer):
            store.add("boe", boethius_document(validate=False))
            store.sync()
        assert not any(op.startswith("fsync") for op, _ in layer.log)

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="durability"):
            DocumentStore.init(tmp_path / "cat", durability="maybe")


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


class TestRecoveryCli:
    def test_verify_and_recover_verbs(self, capsys, tmp_path):
        root = str(tmp_path / "cat")
        run_cli(capsys, "store", "init", root)
        run_cli(capsys, "store", "add", root, "boe", "--sample")
        code, out, _ = run_cli(capsys, "store", "verify", root)
        assert code == 0 and "ok (" in out and "0 with problems" in out
        code, out, _ = run_cli(capsys, "store", "recover", root)
        assert code == 0 and "store.json" in out

        flip_block_byte(tmp_path / "cat" / "boe.mhxb")
        code, out, _ = run_cli(capsys, "store", "verify", root)
        assert code == 1 and "corrupt:" in out

    def test_compact_reports_skips(self, capsys, tmp_path):
        root = tmp_path / "cat"
        fresh_store(root)
        (root / "boe.mhxb").unlink()
        code, out, _ = run_cli(capsys, "store", "recover", str(root))
        assert code == 0 and "quarantined 'boe'" in out


# ---------------------------------------------------------------------------
# engine-level durability passthrough
# ---------------------------------------------------------------------------


class TestSaveDurability:
    def test_save_mhxb_durability_full_is_byte_identical(self, tmp_path):
        engine = Engine(boethius_document(validate=False))
        relaxed = tmp_path / "off.mhxb"
        durable = tmp_path / "full.mhxb"
        engine.save_mhxb(relaxed)
        engine.save_mhxb(durable, durability="full")
        assert relaxed.read_bytes() == durable.read_bytes()
        verify_blocks(durable)

    def test_bad_durability_rejected(self, tmp_path):
        engine = Engine(boethius_document(validate=False))
        with pytest.raises(ReproError, match="durability"):
            save_engine(engine, tmp_path / "x.mhxb", durability="later")

    def test_integrity_error_carries_block(self, tmp_path):
        engine = Engine(boethius_document(validate=False))
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        block = flip_block_byte(path)
        with pytest.raises(IntegrityError) as info:
            Engine.from_mhxb(path, verify=True)
        assert info.value.block == block
