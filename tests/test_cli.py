"""Tests for the mhxq command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.corpus.boethius import BASE_TEXT, ENCODINGS


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestQueryCommands:
    def test_query_sample(self, capsys):
        code, out, _err = run_cli(capsys, "query", "--sample",
                                  "count(/descendant::w)")
        assert code == 0
        assert out.strip() == "6"

    def test_query_paper_i1(self, capsys):
        query = ('for $l in /descendant::line[overlapping::w'
                 '[string(.) = "singallice"] or xdescendant::w'
                 '[string(.) = "singallice"]] return string($l)')
        code, out, _err = run_cli(capsys, "query", "--sample", query)
        assert code == 0
        assert out.strip() == BASE_TEXT

    def test_query_xquery_mode(self, capsys):
        code, out, _err = run_cli(capsys, "query", "--sample",
                                  "--mode", "xquery", "'a', 'b'")
        assert out.strip() == "a b"

    def test_query_from_file(self, capsys, tmp_path):
        query_file = tmp_path / "q.xq"
        query_file.write_text("count(/descendant::leaf())",
                              encoding="utf-8")
        code, out, _err = run_cli(capsys, "query", "--sample",
                                  f"@{query_file}")
        assert out.strip() == "16"

    def test_xpath_command(self, capsys):
        code, out, _err = run_cli(capsys, "xpath", "--sample",
                                  "/descendant::dmg[1]")
        assert out.strip() == "<dmg>w</dmg>"

    def test_query_without_document_errors(self, capsys):
        code, _out, err = run_cli(capsys, "query", "1+1")
        assert code == 1
        assert "provide --mhx" in err


class TestInspectionCommands:
    def test_stats(self, capsys):
        code, out, _err = run_cli(capsys, "stats", "--sample")
        assert code == 0
        assert "leaves" in out and "16" in out

    def test_describe(self, capsys):
        _code, out, _err = run_cli(capsys, "describe", "--sample")
        assert "hierarchy physical" in out

    def test_render_dot(self, capsys):
        _code, out, _err = run_cli(capsys, "render", "--sample")
        assert out.startswith("digraph")

    def test_leaves(self, capsys):
        _code, out, _err = run_cli(capsys, "leaves", "--sample")
        assert "'gesceaftum'" in out
        assert len(out.strip().splitlines()) == 16

    def test_validate(self, capsys):
        code, out, _err = run_cli(capsys, "validate", "--sample")
        assert code == 0
        assert "OK" in out

    def test_experiments(self, capsys):
        code, out, _err = run_cli(capsys, "experiments")
        assert code == 0
        assert "Q-I.1" in out and "EXACT" in out


class TestBaselineCommands:
    def test_fragment(self, capsys):
        _code, out, _err = run_cli(capsys, "fragment", "--sample")
        assert 'part="I"' in out

    def test_milestone(self, capsys):
        _code, out, _err = run_cli(capsys, "milestone", "--sample",
                                   "--primary", "structural")
        assert "lineS" in out


class TestPackAndLoad:
    def test_pack_then_query(self, capsys, tmp_path):
        text_file = tmp_path / "base.txt"
        text_file.write_text(BASE_TEXT, encoding="utf-8")
        files = []
        for name, xml in ENCODINGS.items():
            xml_file = tmp_path / f"{name}.xml"
            xml_file.write_text(xml, encoding="utf-8")
            files.append(f"{name}={xml_file}")
        out_path = tmp_path / "doc.mhx"
        code, out, _err = run_cli(capsys, "pack", str(out_path),
                                  "--text", str(text_file), *files)
        assert code == 0
        assert "4 hierarchies" in out
        code, out, _err = run_cli(capsys, "query", "--mhx", str(out_path),
                                  "count(/descendant::line)")
        assert out.strip() == "2"

    def test_pack_bad_spec(self, capsys, tmp_path):
        text_file = tmp_path / "base.txt"
        text_file.write_text("x", encoding="utf-8")
        code, _out, err = run_cli(capsys, "pack",
                                  str(tmp_path / "o.mhx"),
                                  "--text", str(text_file), "noequals")
        assert code == 1
        assert "NAME=FILE" in err

    def test_bad_query_reports_error(self, capsys):
        code, _out, err = run_cli(capsys, "query", "--sample", "for $x in")
        assert code == 1
        assert "error:" in err
