"""Cost-based planning (DESIGN.md §16): statistics, ordering, fallback.

Three contracts, in suite order:

* the vectorized statistics collectors agree with the per-node oracle
  walk and are deterministic (stable fingerprints);
* a costed plan is a pure optimization — item-for-item identical to
  the mechanical lowering on the paper corpus, generated corpora, and
  hypothesis-drawn documents;
* the adaptive executor notices misestimates mid-plan (cost_fallbacks)
  and still returns the oracle answer, and stale statistics never
  serve a cached plan.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.api import Engine
from repro.cmh import Hierarchy, MultihierarchicalDocument
from repro.cmh.spans import Span, SpanSet
from repro.core.goddag import KyGoddag
from repro.core.goddag.stats import (
    PlanStats,
    _collect_walk,
    collect,
    collect_plan_stats,
)
from repro.core.plan import compile_query
from repro.core.runtime import QueryOptions
from repro.corpus import GeneratorConfig, generate_document
from repro.experiments.paperdata import PAPER_QUERIES
from repro.store.plancache import SharedPlanCache

from tests.strategies import multihierarchical_documents

SETTINGS = settings(max_examples=30, deadline=None)

#: queries that exercise every estimator branch: standard axes,
#: containment / boundary / stab join kernels, semi-join conjunctions,
#: FLWOR, and aggregates
DIFFERENTIAL_QUERIES = (
    "/descendant::w",
    "count(/descendant::w)",
    "/descendant::w/xancestor::dmg",
    "/descendant::w/overlapping::res",
    "/descendant::w[xfollowing::res]",
    "/descendant::w[xancestor::res][xfollowing::dmg]",
    "/descendant::line/xdescendant::w",
    "for $w in /descendant::w[overlapping::dmg] return string($w)",
)


def skewed_document(n_words: int = 400) -> MultihierarchicalDocument:
    return generate_document(GeneratorConfig(
        n_words=n_words, seed=11, damage_rate=0.02,
        restoration_rate=0.05, hyphenation_rate=0.2,
        boundary_cross_rate=0.5))


def adversarial_document() -> MultihierarchicalDocument:
    """Statistics lie here: ``res`` densely covers the right half (the
    coverage-based xancestor selectivity estimate is ~1.0) while every
    ``w`` lives in the left half (true selectivity 0), and the lone
    ``dmg`` *precedes* all words so ``[xfollowing::dmg]`` never holds
    despite a high histogram estimate."""
    text = "wa " * 30 + "x" * 60
    document = MultihierarchicalDocument(text)
    words = SpanSet(text)
    for index in range(30):
        words.add(Span(index * 3, index * 3 + 2, "w"))
    document.add_hierarchy(Hierarchy("words", words.to_document("r")))
    cover = SpanSet(text)
    cover.add(Span(90, len(text), "res"))
    for depth in range(8):
        cover.add(Span(91 + depth, len(text) - depth, "res",
                       depth_hint=depth + 1))
    document.add_hierarchy(Hierarchy("layers", cover.to_document("r")))
    marks = SpanSet(text)
    marks.add(Span(0, 1, "dmg"))
    document.add_hierarchy(Hierarchy("marks", marks.to_document("r")))
    return document


# ---------------------------------------------------------------------------
# statistics: vectorized collectors vs the per-node oracle
# ---------------------------------------------------------------------------


class TestVectorizedInventory:
    def test_boethius_matches_walk(self, goddag):
        assert collect(goddag).rows() == _collect_walk(goddag).rows()

    def test_generated_corpus_matches_walk(self):
        goddag = KyGoddag.build(skewed_document())
        assert collect(goddag).rows() == _collect_walk(goddag).rows()

    def test_survives_updates(self, boethius_doc):
        engine = Engine(boethius_doc)
        engine.update('rename node /descendant::w[1] as "wx"')
        assert (collect(engine.goddag).rows()
                == _collect_walk(engine.goddag).rows())

    @SETTINGS
    @given(document=multihierarchical_documents())
    def test_hypothesis_documents_match_walk(self, document):
        goddag = KyGoddag.build(document)
        assert collect(goddag).rows() == _collect_walk(goddag).rows()


class TestPlanStats:
    def test_deterministic_fingerprint(self, goddag):
        first = collect_plan_stats(goddag)
        second = collect_plan_stats(goddag)
        assert first.payload() == second.payload()
        assert first.fingerprint() == second.fingerprint()

    def test_fingerprint_excludes_version(self, boethius_doc):
        replica = Engine(boethius_document_copy(boethius_doc))
        original = Engine(boethius_doc)
        assert (original.plan_stats().fingerprint()
                == replica.plan_stats().fingerprint())

    def test_cardinality_shift_changes_fingerprint(self, boethius_doc):
        engine = Engine(boethius_doc)
        before = engine.plan_stats().fingerprint()
        engine.update('rename node /descendant::w[1] as "wx"')
        assert engine.plan_stats().fingerprint() != before

    def test_payload_roundtrip(self, goddag):
        stats = collect_plan_stats(goddag)
        clone = PlanStats.from_payload(stats.payload())
        assert clone.payload() == stats.payload()

    def test_cards_match_fig2_inventory(self, goddag):
        inventory = collect(goddag)
        stats = collect_plan_stats(goddag)
        for hierarchy in inventory.hierarchies:
            assert (stats.cards[hierarchy.name]
                    == hierarchy.elements_by_name)

    @SETTINGS
    @given(document=multihierarchical_documents())
    def test_hypothesis_payloads_are_stable(self, document):
        goddag = KyGoddag.build(document)
        first = collect_plan_stats(goddag).payload()
        assert collect_plan_stats(goddag).payload() == first


def boethius_document_copy(document):
    from repro.corpus.boethius import boethius_document

    del document  # a fresh build is the replica
    return boethius_document(validate=False)


# ---------------------------------------------------------------------------
# persistence: the .mhxb plan-stats block
# ---------------------------------------------------------------------------


class TestMhxbPersistence:
    def test_saved_stats_match_live_collection(self, boethius_doc,
                                               tmp_path):
        engine = Engine(boethius_doc)
        live = engine.plan_stats().payload()
        path = tmp_path / "boe.mhxb"
        engine.save_mhxb(path)
        loaded = Engine.from_mhxb(path)
        attached = getattr(loaded.goddag, "_plan_stats", None)
        assert attached is not None, "load_engine must attach the block"
        assert attached.payload() == live
        assert loaded.plan_stats().payload() == live

    def test_absent_block_recollects(self, boethius_doc, tmp_path):
        engine = Engine(boethius_doc)
        path = tmp_path / "boe.mhxb"
        engine.save_mhxb(path)
        loaded = Engine.from_mhxb(path)
        # simulate a pre-§16 file with no plan_stats block
        loaded.goddag._plan_stats = None
        recollected = loaded.plan_stats()
        assert recollected is not None
        assert (recollected.fingerprint()
                == engine.plan_stats().fingerprint())


# ---------------------------------------------------------------------------
# differential: costed plans are a pure optimization
# ---------------------------------------------------------------------------


class TestCostedEqualsMechanical:
    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    def test_boethius(self, boethius_doc, query):
        costed = Engine(boethius_doc)
        mechanical = Engine(boethius_doc, use_cost=False)
        assert (costed.query(query).strings()
                == mechanical.query(query).strings())

    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    def test_skewed_corpus(self, query):
        document = skewed_document()
        costed = Engine(document)
        mechanical = Engine(document, use_cost=False)
        assert (costed.query(query).strings()
                == mechanical.query(query).strings())

    def test_paper_queries(self, boethius_doc):
        costed = Engine(boethius_doc)
        mechanical = Engine(boethius_doc, use_cost=False)
        for spec in PAPER_QUERIES:
            assert (costed.query(spec.query).strings()
                    == mechanical.query(spec.query).strings())

    @SETTINGS
    @given(document=multihierarchical_documents())
    def test_hypothesis_documents(self, document):
        costed = Engine(document)
        mechanical = Engine(document, use_cost=False)
        for query in ("/descendant::w/xancestor::res",
                      "/descendant::w[xfollowing::dmg]",
                      "/descendant::seg/overlapping::line"):
            assert (costed.query(query).strings()
                    == mechanical.query(query).strings())

    def test_estimator_is_deterministic(self, boethius_doc):
        engine = Engine(boethius_doc)
        stats = engine.plan_stats()
        query = DIFFERENTIAL_QUERIES[5]
        first = compile_query(query, stats=stats).explain()
        second = compile_query(query, stats=stats).explain()
        assert first == second
        assert "est=" in first


class TestJoinReversal:
    def test_skewed_chain_reverses(self):
        engine = Engine(skewed_document(2000))
        report = engine.explain("/descendant::w/xancestor::dmg")
        assert "cost: reversed join pair" in report
        assert "step descendant::dmg" in report

    def test_reversed_results_match_oracle(self):
        document = skewed_document(2000)
        costed = Engine(document)
        mechanical = Engine(document, use_cost=False)
        for query in ("/descendant::w/xancestor::dmg",
                      "/descendant::w/overlapping::dmg"):
            assert (costed.query(query).strings()
                    == mechanical.query(query).strings())


# ---------------------------------------------------------------------------
# adaptivity + observability
# ---------------------------------------------------------------------------


class TestAdaptiveFallback:
    QUERY = "/descendant::w[xancestor::res][xfollowing::dmg]"

    def test_misestimate_triggers_fallback(self):
        engine = Engine(adversarial_document())
        result = engine.query(self.QUERY)
        assert result.stats.cost_fallbacks >= 1

    def test_fallback_still_matches_oracle(self):
        document = adversarial_document()
        costed = Engine(document)
        mechanical = Engine(document, use_cost=False)
        assert (costed.query(self.QUERY).strings()
                == mechanical.query(self.QUERY).strings())

    def test_mechanical_plans_never_fall_back(self):
        engine = Engine(adversarial_document(), use_cost=False)
        result = engine.query(self.QUERY)
        assert result.stats.cost_fallbacks == 0

    def test_factor_is_configurable(self):
        document = adversarial_document()
        lenient = Engine(document, options=QueryOptions(
            cost_fallback_factor=1e9))
        assert lenient.query(self.QUERY).stats.cost_fallbacks == 0


class TestObservability:
    def test_stats_carry_est_and_act(self, boethius_doc):
        engine = Engine(boethius_doc)
        result = engine.query("/descendant::w[xfollowing::res]")
        assert result.stats.est_rows is not None
        assert result.stats.act_rows == len(result.items)
        assert result.stats.op_actuals

    def test_explain_analyze_renders_est_and_act(self, boethius_doc):
        engine = Engine(boethius_doc)
        report = engine.explain("/descendant::w[xfollowing::res]",
                                analyze=True)
        assert "est=" in report and "act=" in report

    def test_plain_explain_has_no_actuals(self, boethius_doc):
        engine = Engine(boethius_doc)
        report = engine.explain("/descendant::w[xfollowing::res]")
        assert "est=" in report and "act=" not in report

    def test_mechanical_explain_is_unannotated(self, boethius_doc):
        report = compile_query("/descendant::w[xfollowing::res]").explain()
        assert "est=" not in report and "sel=" not in report


# ---------------------------------------------------------------------------
# the shared plan cache under statistics fingerprints
# ---------------------------------------------------------------------------


class TestPlanCacheFingerprints:
    def test_costed_and_mechanical_are_distinct_entries(self,
                                                        boethius_doc):
        cache = SharedPlanCache()
        engine = Engine(boethius_doc)
        query = "count(/descendant::w)"
        _mech, hit = cache.get(query, engine.options)
        assert hit is False
        costed, hit = cache.get(query, engine.options,
                                stats=engine.plan_stats())
        assert hit is False
        assert costed.costed is True
        _again, hit = cache.get(query, engine.options,
                                stats=engine.plan_stats())
        assert hit is True

    def test_identical_replicas_share_costed_plans(self, boethius_doc):
        cache = SharedPlanCache()
        first = Engine(boethius_doc)
        second = Engine(boethius_document_copy(boethius_doc))
        query = "count(/descendant::w)"
        cache.get(query, first.options, stats=first.plan_stats())
        _plan, hit = cache.get(query, second.options,
                               stats=second.plan_stats())
        assert hit is True
