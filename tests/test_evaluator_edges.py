"""Edge-case tests for the evaluator: snapshots, order by, errors."""

from __future__ import annotations

import pytest

from repro.errors import QueryEvaluationError
from repro.markup import dom
from repro.core.runtime import evaluate_query, serialize_items
from repro.core.runtime.evaluator import copy_dom, copy_gnode


def run(goddag, query, **kwargs):
    return evaluate_query(goddag, query, **kwargs)


class TestSnapshotting:
    def test_temp_nodes_copied_out(self, goddag):
        result = run(goddag,
                     'analyze-string(/descendant::w[2], "unawe")')
        assert isinstance(result[0], dom.Element)
        # Temp hierarchy and its leaf splits are gone.
        assert goddag.hierarchy_names == [
            "physical", "structural", "restoration", "damage"]
        assert len(goddag.partition) == 16

    def test_persistent_nodes_not_copied(self, goddag):
        result = run(goddag, "/descendant::dmg[1]")
        from repro.core.goddag.nodes import GElement

        assert isinstance(result[0], GElement)

    def test_nested_temp_node_result(self, goddag):
        result = run(goddag, '''
            let $res := analyze-string(/descendant::w[2], "unawe")
            return $res/xdescendant::m
        ''')
        assert isinstance(result[0], dom.Element)
        assert result[0].name == "m"
        assert result[0].text_content() == "unawe"

    def test_strings_derived_from_temp_survive(self, goddag):
        result = run(goddag, '''
            let $res := analyze-string(/descendant::w[2], "unawe")
            return string($res/xdescendant::m)
        ''')
        assert result == ["unawe"]


class TestCopyHelpers:
    def test_copy_gnode_element(self, goddag):
        word = next(goddag.elements("w"))
        copy = copy_gnode(word)
        assert isinstance(copy, dom.Element)
        assert copy.text_content() == "gesceaftum"

    def test_copy_gnode_leaf(self, goddag):
        leaf = goddag.partition.leaf_at(0)
        copy = copy_gnode(leaf)
        assert isinstance(copy, dom.Text)

    def test_copy_gnode_root_rejected(self, goddag):
        with pytest.raises(QueryEvaluationError):
            copy_gnode(goddag.root)

    def test_copy_dom_deep(self):
        element = dom.Element("a", {"x": "1"})
        element.append(dom.Text("t"))
        element.append(dom.Comment("c"))
        element.append(dom.ProcessingInstruction("p", "d"))
        copy = copy_dom(element)
        assert copy is not element
        assert copy.attributes == {"x": "1"}
        assert len(copy.children) == 3
        assert copy.children[0] is not element.children[0]

    def test_copy_dom_document_rejected(self):
        with pytest.raises(QueryEvaluationError):
            copy_dom(dom.Document())


class TestOrderByEdges:
    def test_empty_keys_sort_least_by_default(self, goddag):
        result = run(goddag, '''
            for $pair in (2, 1, 3)
            order by (if ($pair = 3) then () else $pair)
            return $pair
        ''')
        assert result == [3, 1, 2]

    def test_empty_greatest(self, goddag):
        result = run(goddag, '''
            for $pair in (2, 1, 3)
            order by (if ($pair = 3) then () else $pair) empty greatest
            return $pair
        ''')
        assert result == [1, 2, 3]

    def test_descending_with_empty(self, goddag):
        result = run(goddag, '''
            for $pair in (2, 1, 3)
            order by (if ($pair = 3) then () else $pair) descending
            return $pair
        ''')
        assert result == [2, 1, 3]

    def test_mixed_type_keys(self, goddag):
        # Numbers order before strings (documented total order).
        result = run(goddag, '''
            for $k in ("b", 2, "a", 1) order by $k return string($k)
        ''')
        assert result == ["1", "2", "a", "b"]

    def test_multi_key_stability(self, goddag):
        result = run(goddag, '''
            for $w in /descendant::w
            order by string-length(string($w)), string($w) descending
            return string($w)
        ''')
        # Equal lengths (10) tie-break descending: singallice first.
        assert result == ["ϸa", "sibbe", "gecynde", "singallice",
                          "gesceaftum", "unawendendne"]


class TestAttributesInConstructors:
    def test_attribute_node_content_becomes_attribute(self):
        from repro.cmh import MultihierarchicalDocument
        from repro.core.goddag import KyGoddag

        document = MultihierarchicalDocument.from_xml(
            "ab", {"h": '<r><x n="7">ab</x></r>'})
        goddag = KyGoddag.build(document)
        result = evaluate_query(
            goddag, "<copy>{/descendant::x/@n}</copy>")
        assert serialize_items(result) == '<copy n="7"/>'

    def test_attr_serialization(self):
        from repro.cmh import MultihierarchicalDocument
        from repro.core.goddag import KyGoddag

        document = MultihierarchicalDocument.from_xml(
            "ab", {"h": '<r><x n="7">ab</x></r>'})
        goddag = KyGoddag.build(document)
        result = evaluate_query(goddag, "/descendant::x/@n")
        assert serialize_items(result) == 'n="7"'


class TestMiscEdges:
    def test_expr_step_all_atomics(self, goddag):
        result = run(goddag, "/descendant::w/string-length(string(.))")
        assert result == [10, 12, 10, 5, 7, 2]

    def test_expr_step_mixed_rejected(self, goddag):
        with pytest.raises(QueryEvaluationError, match="mix"):
            run(goddag,
                "/descendant::line/(if (position() = 1) then string(.) "
                "else .)")

    def test_predicate_numeric_float(self, goddag):
        assert run(goddag, "string(/descendant::w[1.0])") == ["gesceaftum"]
        assert run(goddag, "/descendant::w[1.5]") == []

    def test_root_name_test_matches(self, goddag):
        assert len(run(goddag, "/self::r")) == 1
        assert run(goddag, "/self::other") == []

    def test_quantified_multiple_bindings(self, goddag):
        assert run(goddag, '''
            some $a in (1, 2), $b in (10, 20)
            satisfies $a * $b = 40
        ''') == [True]

    def test_deep_flwor_nesting(self, goddag):
        result = run(goddag, '''
            for $a in 1 to 3
            return for $b in 1 to $a
                   return for $c in 1 to $b return $c
        ''')
        assert len(result) == 10

    def test_variables_shadowing(self, goddag):
        result = run(goddag, '''
            for $x in (1, 2)
            return (for $x in (10) return $x, $x)
        ''')
        assert result == [10, 1, 10, 2]

    def test_keep_temporaries_leaves_hierarchy(self, goddag):
        run(goddag, 'analyze-string(/descendant::w[2], "unawe")',
            keep_temporaries=True)
        assert any(name.startswith("rest")
                   for name in goddag.hierarchy_names)
        for name in list(goddag.hierarchy_names):
            if name.startswith("rest"):
                goddag.remove_hierarchy(name)
