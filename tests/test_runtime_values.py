"""Unit tests for the value model: atomization, EBV, comparisons."""

from __future__ import annotations

import math

import pytest

from repro.errors import QueryEvaluationError
from repro.markup.dom import Element, Text
from repro.core.runtime import values


class TestStringValue:
    def test_atomics(self):
        assert values.string_value(True) == "true"
        assert values.string_value(False) == "false"
        assert values.string_value(3) == "3"
        assert values.string_value(2.5) == "2.5"
        assert values.string_value("x") == "x"

    def test_gnode(self, goddag):
        word = next(goddag.elements("w"))
        assert values.string_value(word) == "gesceaftum"

    def test_dom_node(self):
        element = Element("b")
        element.append(Text("bo"))
        element.append(Text("ld"))
        assert values.string_value(element) == "bold"

    def test_is_node(self, goddag):
        assert values.is_node(goddag.root)
        assert values.is_node(Element("a"))
        assert not values.is_node("string")
        assert not values.is_node(1)


class TestAtomization:
    def test_atomize_node_to_string(self, goddag):
        leaf = goddag.partition.leaf_at(0)
        assert values.atomize(leaf) == "gesceaftum"

    def test_atomize_sequence(self, goddag):
        sequence = [goddag.partition.leaf_at(0), 5, "x"]
        assert values.atomize_sequence(sequence) == ["gesceaftum", 5, "x"]


class TestEffectiveBooleanValue:
    def test_empty_false(self):
        assert values.effective_boolean_value([]) is False

    def test_node_true(self, goddag):
        assert values.effective_boolean_value([goddag.root]) is True
        assert values.effective_boolean_value(
            [goddag.root, goddag.root]) is True

    def test_singleton_atomics(self):
        assert values.effective_boolean_value([True]) is True
        assert values.effective_boolean_value([0]) is False
        assert values.effective_boolean_value([0.0]) is False
        assert values.effective_boolean_value([math.nan]) is False
        assert values.effective_boolean_value([""]) is False
        assert values.effective_boolean_value(["x"]) is True

    def test_multi_atomic_rejected(self):
        with pytest.raises(QueryEvaluationError):
            values.effective_boolean_value([1, 2])


class TestNumbers:
    def test_to_number(self):
        assert values.to_number("3.5") == 3.5
        assert values.to_number(" 2 ") == 2.0
        assert values.to_number(True) == 1.0
        assert math.isnan(values.to_number("abc"))

    def test_format_number(self):
        assert values.format_number(1.0) == "1"
        assert values.format_number(-2.0) == "-2"
        assert values.format_number(0.5) == "0.5"
        assert values.format_number(7) == "7"
        assert values.format_number(math.nan) == "NaN"
        assert values.format_number(math.inf) == "Infinity"
        assert values.format_number(-math.inf) == "-Infinity"
        assert values.format_number(True) == "true"


class TestComparisons:
    def test_numeric_promotion(self):
        assert values.compare_atomic("eq", "2", 2)
        assert values.compare_atomic("lt", 1, "10")

    def test_string_comparison(self):
        assert values.compare_atomic("lt", "a", "b")
        assert not values.compare_atomic("gt", "a", "b")

    def test_boolean_comparison(self):
        assert values.compare_atomic("eq", True, True)
        assert values.compare_atomic("ne", True, False)
        # A boolean operand coerces the other side to boolean.
        assert values.compare_atomic("eq", True, "anything")

    def test_nan_semantics(self):
        assert not values.compare_atomic("eq", math.nan, math.nan)
        assert values.compare_atomic("ne", math.nan, 1)

    def test_unknown_operator(self):
        with pytest.raises(QueryEvaluationError):
            values.compare_atomic("xx", 1, 2)

    def test_general_compare_existential(self):
        assert values.general_compare("=", [1, 2, 3], [3, 9])
        assert not values.general_compare("=", [1, 2], [3])
        assert values.general_compare("<", [5, 1], [2])
        assert values.general_compare("!=", [1], [1, 2])

    def test_general_compare_empty(self):
        assert not values.general_compare("=", [], [1])

    def test_value_compare(self):
        assert values.value_compare("eq", [1], [1]) == [True]
        assert values.value_compare("eq", [], [1]) == []
        with pytest.raises(QueryEvaluationError):
            values.value_compare("eq", [1, 2], [1])

    def test_singleton_node(self, goddag):
        assert values.singleton_node([goddag.root], "op") is goddag.root
        with pytest.raises(QueryEvaluationError):
            values.singleton_node(["x"], "op")
        with pytest.raises(QueryEvaluationError):
            values.singleton_node([goddag.root, goddag.root], "op")
