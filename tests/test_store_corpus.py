"""Tests for sharded corpora in the document store (DESIGN.md §13).

Corpus lifecycle (add/persist/reopen/remove), the ``cquery``
scatter-gather executor in every routing mode — serial in-process and
over the worker pool — shard pruning against the manifest statistics,
the worker fault path (a shard worker dying mid-query surfaces as a
clean :class:`StoreError` naming the shard, pool usable afterwards),
crash-recovery integration (shard files are never adopted as
documents; a missing shard quarantines its corpus), and the ``mhxq
store shard``/``store cquery`` CLI verbs.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Engine
from repro.cli import main
from repro.errors import ReproError, StoreError
from repro.cmh import MultihierarchicalDocument
from repro.core.runtime.serializer import serialize_item
from repro.corpus.generator import GeneratorConfig, generate_document
from repro.store import DocumentStore


@pytest.fixture(scope="module")
def document() -> MultihierarchicalDocument:
    return generate_document(GeneratorConfig(n_words=600, seed=11))


@pytest.fixture()
def store(tmp_path) -> DocumentStore:
    catalog = DocumentStore.init(tmp_path / "catalog")
    yield catalog
    catalog.close()


@pytest.fixture()
def corpus(store, document) -> DocumentStore:
    store.add_corpus("c", document, shards=4)
    return store


def oracle_strings(document, text: str) -> list[str]:
    return [serialize_item(item)
            for item in Engine(document).query(text)]


class TestCorpusLifecycle:
    def test_add_persists_shards_and_stats(self, corpus, document,
                                           tmp_path):
        assert corpus.corpora == ["c"]
        stats = corpus.corpus_stats("c")
        assert stats.words == len(document.text.split())
        root = tmp_path / "catalog"
        files = sorted(root.glob("c.shard*.mhxb"))
        assert len(files) == len(stats.shards) == 4

    def test_reopen_keeps_corpus(self, corpus, document, tmp_path):
        reopened = DocumentStore(tmp_path / "catalog")
        try:
            assert reopened.corpora == ["c"]
            result = reopened.cquery(
                'count(collection("c")/descendant::w)')
            assert result.items == oracle_strings(
                document, "count(/descendant::w)")
        finally:
            reopened.close()

    def test_name_collisions_rejected(self, corpus, document):
        with pytest.raises(ReproError, match="already exists"):
            corpus.add_corpus("c", document, shards=2)
        corpus.add("doc", document)
        with pytest.raises(ReproError, match="already exists"):
            corpus.add_corpus("doc", document, shards=2)

    def test_invalid_name_rejected(self, store, document):
        with pytest.raises(ReproError, match="invalid corpus name"):
            store.add_corpus("no/slash", document, shards=2)

    def test_remove_corpus_deletes_shards(self, corpus, tmp_path):
        corpus.remove_corpus("c")
        assert corpus.corpora == []
        assert not list((tmp_path / "catalog").glob("c.shard*"))
        with pytest.raises(ReproError, match="no corpus named"):
            corpus.corpus_stats("c")

    def test_unknown_corpus(self, store):
        with pytest.raises(ReproError, match="no corpus named"):
            store.cquery('collection("nope")/descendant::w')


class TestCqueryModes:
    @pytest.mark.parametrize("corpus_text,oracle_text,mode", [
        ('collection("c")/descendant::w', "/descendant::w", "scatter"),
        ('collection("c")/descendant::dmg/xdescendant::w',
         "/descendant::dmg/xdescendant::w", "scatter"),
        ('collection("c")/descendant::w[overlapping::line]',
         "/descendant::w[overlapping::line]", "scatter"),
        ('count(collection("c")/descendant::w)',
         "count(/descendant::w)", "aggregate"),
        ('exists(collection("c")/descendant::dmg)',
         "exists(/descendant::dmg)", "aggregate"),
        ('for $w in collection("c")/descendant::w return string($w)',
         "for $w in /descendant::w return string($w)", "concat"),
        ('collection("c")/descendant::w/following::dmg',
         "/descendant::w/following::dmg", "fused"),
        ('collection("c")/descendant::line/xfollowing::w',
         "/descendant::line/xfollowing::w", "fused"),
    ])
    def test_matches_unsharded_oracle(self, corpus, document,
                                      corpus_text, oracle_text, mode):
        result = corpus.cquery(corpus_text)
        assert result.mode == mode, result.reason
        assert result.items == oracle_strings(document, oracle_text)

    def test_aggregate_value_is_raw_scalar(self, corpus, document):
        result = corpus.cquery('count(collection("c")/descendant::w)')
        assert result.value == len(
            oracle_strings(document, "/descendant::w"))

    def test_result_shape(self, corpus):
        result = corpus.cquery('collection("c")/descendant::w')
        assert len(result) == len(result.items)
        assert list(iter(result)) == result.strings()
        assert result.shards_total == 4
        assert result.shards_executed == 4
        assert result.shards_pruned == 0

    def test_plan_cache_shared_across_calls(self, corpus):
        corpus.cquery('collection("c")/descendant::w')
        _compiled, hit = corpus.plans.get(
            'collection("c")/descendant::w', corpus.options)
        assert hit

    def test_needs_collection_reference(self, corpus):
        with pytest.raises(ReproError, match="collection"):
            corpus.cquery("/descendant::w")

    def test_one_corpus_per_query(self, corpus, document):
        corpus.add_corpus("d", document, shards=2)
        with pytest.raises(StoreError, match="one corpus per query"):
            corpus.cquery(
                'for $w in collection("c")/descendant::w '
                'return collection("d")/descendant::line')


class TestParallel:
    def test_pool_matches_serial(self, corpus):
        serial = corpus.cquery('collection("c")/descendant::w')
        pooled = corpus.cquery('collection("c")/descendant::w',
                               workers=2)
        assert pooled.items == serial.items
        assert pooled.workers == 2

    def test_pool_aggregate(self, corpus, document):
        result = corpus.cquery('count(collection("c")/descendant::w)',
                               workers=2)
        assert result.items == oracle_strings(
            document, "count(/descendant::w)")

    def test_pool_reused_across_queries(self, corpus):
        corpus.cquery('collection("c")/descendant::w', workers=2)
        pool = corpus._pools[2]
        corpus.cquery('collection("c")/descendant::vline', workers=2)
        assert corpus._pools[2] is pool
        assert pool._executor is not None

    def test_invalid_worker_count(self):
        from repro.store import ShardWorkerPool

        with pytest.raises(StoreError, match="worker count"):
            ShardWorkerPool(0)


class TestWorkerFaults:
    def test_dead_worker_names_shard(self, corpus):
        with pytest.raises(StoreError) as excinfo:
            corpus.cquery('collection("c")/descendant::w', workers=2,
                          _crash_shard=2)
        message = str(excinfo.value)
        assert "c.shard0002.mhxb" in message
        assert "died" in message

    def test_pool_usable_after_crash(self, corpus):
        with pytest.raises(StoreError):
            corpus.cquery('collection("c")/descendant::w', workers=2,
                          _crash_shard=0)
        result = corpus.cquery('count(collection("c")/descendant::w)',
                               workers=2)
        assert result.value == 600

    def test_shard_error_serial_names_shard(self, corpus, monkeypatch):
        import repro.store.catalog as catalog_module

        def boom(engine, plans, text, mode):
            raise StoreError("injected")

        monkeypatch.setattr(catalog_module, "run_shard", boom)
        with pytest.raises(StoreError, match=r"c\.shard0000\.mhxb"):
            corpus.cquery('collection("c")/descendant::w')


class TestPruning:
    @pytest.fixture()
    def lopsided(self, store):
        """dmg markup only in the first ~sixth of the corpus."""
        from repro.store import fuse_documents

        damaged = generate_document(GeneratorConfig(
            n_words=100, seed=3, damage_rate=0.3))
        clean = generate_document(GeneratorConfig(
            n_words=500, seed=4, damage_rate=0.0,
            restoration_rate=0.0))
        document = fuse_documents([damaged, clean])
        store.add_corpus("c", document, shards=6)
        return store, document

    def test_pruned_shards_skipped(self, lopsided):
        store, document = lopsided
        result = store.cquery(
            'collection("c")/descendant::dmg/xdescendant::w')
        assert result.shards_pruned > 0
        assert result.shards_executed < result.shards_total
        assert result.items == oracle_strings(
            document, "/descendant::dmg/xdescendant::w")

    def test_pruning_exact_for_aggregates(self, lopsided):
        store, document = lopsided
        pruned = store.cquery(
            'count(collection("c")/descendant::dmg)')
        unpruned = store.cquery(
            'count(collection("c")/descendant::dmg)', prune=False)
        assert pruned.items == unpruned.items == oracle_strings(
            document, "count(/descendant::dmg)")
        assert pruned.shards_pruned > unpruned.shards_pruned == 0

    def test_all_shards_pruned(self, lopsided):
        store, _document = lopsided
        result = store.cquery(
            'collection("c")/descendant::nosuchname')
        assert result.shards_executed == 0
        assert result.items == []
        empty = store.cquery(
            'count(collection("c")/descendant::nosuchname)')
        assert empty.value == 0
        assert empty.items == ["0"]


class TestRecovery:
    def test_shard_files_not_adopted_as_documents(self, corpus,
                                                  tmp_path):
        reopened = DocumentStore(tmp_path / "catalog")
        try:
            assert reopened.names == []
            assert reopened.recovery["adopted"] == []
            assert reopened.corpora == ["c"]
        finally:
            reopened.close()

    def test_missing_shard_quarantines_corpus(self, corpus, tmp_path):
        (tmp_path / "catalog" / "c.shard0001.mhxb").unlink()
        reopened = DocumentStore(tmp_path / "catalog")
        try:
            assert "c" in reopened.recovery["quarantined"]
            assert reopened.corpora == []
            with pytest.raises(StoreError, match="quarantined"):
                reopened.cquery('collection("c")/descendant::w')
            # remaining shard files are not adopted as documents
            assert reopened.names == []
        finally:
            reopened.close()

    def test_corrupt_shard_quarantines_corpus(self, corpus, tmp_path):
        path = tmp_path / "catalog" / "c.shard0000.mhxb"
        payload = bytearray(path.read_bytes())
        payload[5] ^= 0xFF  # flip a header byte
        path.write_bytes(payload)
        reopened = DocumentStore(tmp_path / "catalog")
        try:
            assert "c" in reopened.recovery["quarantined"]
        finally:
            reopened.close()

    def test_quarantined_corpus_removable(self, corpus, tmp_path):
        (tmp_path / "catalog" / "c.shard0001.mhxb").unlink()
        reopened = DocumentStore(tmp_path / "catalog")
        try:
            reopened.remove("c")
            assert not list((tmp_path / "catalog").glob("c.shard*"))
            manifest = json.loads(
                (tmp_path / "catalog" / "store.json").read_text())
            assert manifest["quarantined"] == {}
        finally:
            reopened.close()


class TestCli:
    def test_shard_and_cquery(self, tmp_path, capsys):
        root = str(tmp_path / "catalog")
        assert main(["store", "init", root]) == 0
        assert main(["store", "shard", root, "corp",
                     "--generate", "400", "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "sharded 'corp' into" in out
        assert main(["store", "cquery", root,
                     'count(collection("corp")/descendant::w)',
                     "--workers", "2", "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "400"
        assert "mode=aggregate" in captured.err
        assert "workers=2" in captured.err

    def test_cquery_no_prune_and_fused(self, tmp_path, capsys):
        root = str(tmp_path / "catalog")
        main(["store", "init", root])
        main(["store", "shard", root, "corp", "--generate", "200"])
        capsys.readouterr()
        assert main(["store", "cquery", root,
                     'collection("corp")/descendant::w/following::w',
                     "--stats"]) == 0
        assert "mode=fused" in capsys.readouterr().err
        assert main(["store", "cquery", root,
                     'collection("corp")/descendant::nosuch',
                     "--no-prune", "--stats"]) == 0
        assert "pruned 0" in capsys.readouterr().err

    def test_shard_sample_document(self, tmp_path, capsys):
        root = str(tmp_path / "catalog")
        main(["store", "init", root])
        assert main(["store", "shard", root, "boe", "--sample",
                     "--shards", "2"]) == 0
        assert "sharded 'boe'" in capsys.readouterr().out

    def test_cquery_error_paths(self, tmp_path, capsys):
        root = str(tmp_path / "catalog")
        main(["store", "init", root])
        assert main(["store", "cquery", root,
                     'collection("nope")/descendant::w']) == 1
        assert "no corpus named" in capsys.readouterr().err
