"""Tests for XML serialization: escaping, pretty-printing, node kinds."""

from __future__ import annotations

import pytest

from repro.markup import parse, serialize
from repro.markup.dom import (
    Attr,
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)
from repro.markup.serializer import escape_attribute, escape_text


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_text_keeps_quotes(self):
        assert escape_text("'\"") == "'\""

    def test_attribute_escapes(self):
        assert escape_attribute('<&"') == "&lt;&amp;&quot;"

    def test_attribute_whitespace_preserved_as_refs(self):
        assert escape_attribute("a\nb\tc") == "a&#10;b&#9;c"

    def test_unicode_passes_through(self):
        assert escape_text("ϸæð") == "ϸæð"


class TestNodeSerialization:
    def test_empty_element_self_closes(self):
        assert serialize(Element("br")) == "<br/>"

    def test_attributes_in_order(self):
        assert serialize(Element("a", {"x": "1", "y": "2"})) == \
            '<a x="1" y="2"/>'

    def test_text_node(self):
        assert serialize(Text("a<b")) == "a&lt;b"

    def test_comment(self):
        assert serialize(Comment(" hi ")) == "<!-- hi -->"

    def test_pi_with_and_without_data(self):
        assert serialize(ProcessingInstruction("t", "d")) == "<?t d?>"
        assert serialize(ProcessingInstruction("t", "")) == "<?t?>"

    def test_attr_node(self):
        assert serialize(Attr("n", 'v"w', Element("a"))) == 'n="v&quot;w"'

    def test_document_with_prolog_nodes(self):
        document = Document()
        document.append(Comment("c"))
        document.append(Element("r"))
        assert serialize(document) == "<!--c--><r/>"


class TestPrettyPrinting:
    def test_element_only_content_indented(self):
        document = parse("<r><a><b/></a><c/></r>")
        pretty = serialize(document, indent="  ")
        assert pretty == ("<r>\n  <a>\n    <b/>\n  </a>\n  <c/>\n</r>")

    def test_mixed_content_not_reindented(self):
        source = "<r>text<b/>more</r>"
        assert serialize(parse(source), indent="  ") == source

    def test_pretty_output_reparses_equal_for_element_content(self):
        document = parse("<r><a/><b><c/></b></r>")
        pretty = serialize(document, indent="  ")
        reparsed = parse(pretty)
        names = [e.name for e in reparsed.root.iter_elements()]
        assert names == ["a", "b", "c"]


class TestRoundTripStability:
    @pytest.mark.parametrize("source", [
        "<r/>",
        '<r a="1"/>',
        "<r>x &amp; y</r>",
        "<r><!--c--><?pi d?>t</r>",
        '<r a="&quot;&#10;"/>',
    ])
    def test_serialize_is_fixpoint(self, source):
        once = serialize(parse(source))
        assert serialize(parse(once)) == once
