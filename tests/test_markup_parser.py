"""Unit tests for the from-scratch XML parser."""

from __future__ import annotations

import pytest

from repro.errors import MarkupError
from repro.markup import (
    Comment,
    Element,
    ProcessingInstruction,
    Text,
    parse,
    parse_fragment,
    serialize,
)


class TestBasicParsing:
    def test_single_empty_element(self):
        doc = parse("<a/>")
        assert doc.root.name == "a"
        assert doc.root.children == []

    def test_element_with_text(self):
        doc = parse("<a>hello</a>")
        assert doc.root.text_content() == "hello"

    def test_nested_elements(self):
        doc = parse("<a><b><c>x</c></b>y</a>")
        assert doc.root.find("c").text_content() == "x"
        assert doc.root.text_content() == "xy"

    def test_mixed_content_order(self):
        doc = parse("<a>one<b/>two<c/>three</a>")
        kinds = [type(child).__name__ for child in doc.root.children]
        assert kinds == ["Text", "Element", "Text", "Element", "Text"]

    def test_attributes(self):
        doc = parse('<a x="1" y="two"/>')
        assert doc.root.attributes == {"x": "1", "y": "two"}

    def test_single_quoted_attributes(self):
        doc = parse("<a x='1'/>")
        assert doc.root.get("x") == "1"

    def test_attribute_whitespace_normalization(self):
        doc = parse('<a x="a\n\tb"/>')
        assert doc.root.get("x") == "a  b"

    def test_unicode_names_and_content(self):
        doc = parse("<ϸorn>ϸa</ϸorn>")
        assert doc.root.name == "ϸorn"
        assert doc.root.text_content() == "ϸa"

    def test_whitespace_only_document_text_preserved(self):
        doc = parse("<a>  <b/>  </a>")
        assert doc.root.text_content() == "    "

    def test_crlf_normalized_to_lf(self):
        doc = parse("<a>x\r\ny\rz</a>")
        assert doc.root.text_content() == "x\ny\nz"


class TestReferences:
    def test_predefined_entities(self):
        doc = parse("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text_content() == "<>&'\""

    def test_decimal_character_reference(self):
        assert parse("<a>&#65;</a>").root.text_content() == "A"

    def test_hex_character_reference(self):
        assert parse("<a>&#x3F8;</a>").root.text_content() == "ϸ"

    def test_entity_in_attribute(self):
        doc = parse('<a x="&amp;&#65;"/>')
        assert doc.root.get("x") == "&A"

    def test_internal_entity_declaration(self):
        doc = parse('<!DOCTYPE a [<!ENTITY e "xy">]><a>&e;</a>')
        assert doc.root.text_content() == "xy"

    def test_nested_entity_expansion(self):
        doc = parse('<!DOCTYPE a [<!ENTITY i "x">'
                    '<!ENTITY o "&i;&i;">]><a>&o;</a>')
        assert doc.root.text_content() == "xx"

    def test_recursive_entity_rejected(self):
        with pytest.raises(MarkupError, match="recursive"):
            parse('<!DOCTYPE a [<!ENTITY e "&e;">]><a>&e;</a>')

    def test_undeclared_entity_rejected(self):
        with pytest.raises(MarkupError, match="undeclared"):
            parse("<a>&nope;</a>")

    def test_bad_character_reference_rejected(self):
        with pytest.raises(MarkupError, match="character reference"):
            parse("<a>&#xZZ;</a>")

    def test_null_character_reference_rejected(self):
        with pytest.raises(MarkupError, match="not a legal XML character"):
            parse("<a>&#0;</a>")


class TestMarkupConstructs:
    def test_comment(self):
        doc = parse("<a><!-- note --></a>")
        comment = doc.root.children[0]
        assert isinstance(comment, Comment)
        assert comment.data == " note "

    def test_comment_excluded_from_text(self):
        assert parse("<a>x<!--c-->y</a>").root.text_content() == "xy"

    def test_cdata(self):
        doc = parse("<a><![CDATA[<not-markup> & ]]></a>")
        assert doc.root.text_content() == "<not-markup> & "

    def test_processing_instruction(self):
        doc = parse('<a><?target data="1"?></a>')
        pi = doc.root.children[0]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "target"
        assert pi.data == 'data="1"'

    def test_pi_without_data(self):
        pi = parse("<a><?stop?></a>").root.children[0]
        assert pi.target == "stop"
        assert pi.data == ""

    def test_xml_declaration_skipped(self):
        doc = parse('<?xml version="1.0" encoding="utf-8"?><a/>')
        assert doc.root.name == "a"

    def test_doctype_name_recorded(self):
        doc = parse("<!DOCTYPE root><root/>")
        assert doc.doctype_name == "root"

    def test_doctype_with_system_id(self):
        doc = parse('<!DOCTYPE r SYSTEM "file.dtd"><r/>')
        assert doc.doctype_name == "r"

    def test_prolog_comment_and_pi(self):
        doc = parse("<!--c--><?pi?><a/><!--after-->")
        kinds = [type(child).__name__ for child in doc.children]
        assert kinds == ["Comment", "ProcessingInstruction", "Element",
                         "Comment"]


class TestWellFormednessErrors:
    @pytest.mark.parametrize("source", [
        "<a>",
        "<a><b></a></b>",
        "<a></b>",
        "<a/><b/>",
        "text only",
        "<a x='1' x='2'/>",
        "<a x=1/>",
        "<a ]]></a>",
        "<a>x]]>y</a>",
        "<a>&amp</a>",
        "<1bad/>",
        "<a><!-- -- --></a>",
        '<a x="<"/>',
        "<a>x</a>trailing",
    ])
    def test_rejected(self, source):
        with pytest.raises(MarkupError):
            parse(source)

    def test_error_carries_position(self):
        with pytest.raises(MarkupError) as info:
            parse("<a>\n  <b></c>\n</a>")
        assert info.value.line == 2
        assert "does not match" in str(info.value)

    def test_mismatch_mentions_open_position(self):
        with pytest.raises(MarkupError, match="line 1"):
            parse("<a></b>")


class TestFragments:
    def test_multiple_roots(self):
        nodes = parse_fragment("<a/>text<b/>")
        assert [type(n).__name__ for n in nodes] == ["Element", "Text",
                                                     "Element"]

    def test_plain_text_fragment(self):
        nodes = parse_fragment("just text")
        assert isinstance(nodes[0], Text)
        assert nodes[0].data == "just text"

    def test_stray_end_tag_rejected(self):
        with pytest.raises(MarkupError, match="end tag"):
            parse_fragment("</a>")


class TestRoundTrip:
    @pytest.mark.parametrize("source", [
        "<a/>",
        '<a x="1"><b>text</b><c/>tail</a>',
        "<a>&lt;escaped&gt; &amp; fine</a>",
        "<r><w>gesceaftum</w> <w>ϸa</w></r>",
    ])
    def test_parse_serialize_fixpoint(self, source):
        once = serialize(parse(source))
        assert serialize(parse(once)) == once
