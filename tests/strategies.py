"""Shared hypothesis strategies for multihierarchical documents."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.errors import CMHError
from repro.cmh import Hierarchy, MultihierarchicalDocument
from repro.cmh.spans import Span, SpanSet

#: A small alphabet keeps texts readable in failure reports while still
#: exercising multi-byte characters.
TEXT_ALPHABET = "ab ϸx"

ELEMENT_NAMES = ("w", "line", "dmg", "res", "seg")


@st.composite
def base_texts(draw, min_size: int = 1, max_size: int = 40) -> str:
    return draw(st.text(alphabet=TEXT_ALPHABET, min_size=min_size,
                        max_size=max_size))


@st.composite
def span_sets(draw, text: str, max_spans: int = 6) -> SpanSet:
    """A properly-nesting span set over ``text``.

    Spans are drawn independently; draws that would properly overlap an
    already accepted span are discarded (not shrunk away), which keeps
    the strategy deterministic per draw sequence.
    """
    spans = SpanSet(text)
    count = draw(st.integers(min_value=0, max_value=max_spans))
    for index in range(count):
        if not text:
            break
        start = draw(st.integers(min_value=0, max_value=len(text)))
        end = draw(st.integers(min_value=start, max_value=len(text)))
        name = draw(st.sampled_from(ELEMENT_NAMES))
        try:
            spans.add(Span(start, end, name, depth_hint=index))
        except CMHError:
            continue  # properly overlapping within one hierarchy
    return spans


@st.composite
def multihierarchical_documents(draw, max_hierarchies: int = 3,
                                max_spans: int = 6,
                                min_text: int = 1,
                                max_text: int = 40
                                ) -> MultihierarchicalDocument:
    text = draw(base_texts(min_size=min_text, max_size=max_text))
    document = MultihierarchicalDocument(text)
    n_hierarchies = draw(st.integers(min_value=1,
                                     max_value=max_hierarchies))
    for index in range(n_hierarchies):
        spans = draw(span_sets(text, max_spans=max_spans))
        document.add_hierarchy(
            Hierarchy(f"h{index}", spans.to_document("r")))
    return document


# ---------------------------------------------------------------------------
# interval-join scenarios (the extended-axis join suite, DESIGN.md §11)
# ---------------------------------------------------------------------------


@st.composite
def join_scenarios(draw, max_hierarchies: int = 3, max_spans: int = 6,
                   max_text: int = 40) -> tuple:
    """``(document, context picks, temporary spans | None)``.

    The raw material of one extended-axis join differential check: a
    multihierarchical document, unbounded index draws the test folds
    modulo the live node count into a context subset, and — half the
    time — an extra properly-nesting span set to register as a
    *temporary* hierarchy (the ``analyze-string`` shape: membership
    joins must see lazily merged sub-indexes, not just built ones).
    """
    document = draw(multihierarchical_documents(
        max_hierarchies=max_hierarchies, max_spans=max_spans,
        max_text=max_text))
    picks = draw(st.lists(st.integers(min_value=0, max_value=999),
                          min_size=1, max_size=6))
    temporary = draw(st.one_of(
        st.none(), span_sets(document.text, max_spans=4)))
    return document, picks, temporary


# ---------------------------------------------------------------------------
# update statements (the differential update fuzzer, DESIGN.md §9)
# ---------------------------------------------------------------------------

#: Update operation shapes the fuzzer draws from.
UPDATE_OP_KINDS = (
    "rename", "replace-value", "delete", "remove-markup",
    "insert", "add-markup", "add-markup-leaves",
)

#: Safe inside both string literals and constructor content.
UPDATE_TEXT_ALPHABET = "ab xy"

INSERT_LOCATIONS = ("into", "into-first", "into-last", "before", "after")


@st.composite
def update_ops(draw) -> dict:
    """One abstract update operation.

    Indices are unbounded draws; :func:`build_update_statement` folds
    them modulo the live document's element/leaf/hierarchy counts, so
    the same op dictionary stays meaningful as the document evolves
    under earlier updates of the sequence.
    """
    return {
        "kind": draw(st.sampled_from(UPDATE_OP_KINDS)),
        "index": draw(st.integers(min_value=0, max_value=999)),
        "index2": draw(st.integers(min_value=0, max_value=999)),
        "name": draw(st.sampled_from(ELEMENT_NAMES + ("note", "mark"))),
        "text": draw(st.text(alphabet=UPDATE_TEXT_ALPHABET, max_size=6)),
        "location": draw(st.sampled_from(INSERT_LOCATIONS)),
        "hierarchy": draw(st.integers(min_value=0, max_value=9)),
    }


def build_update_statement(op: dict, element_count: int, leaf_count: int,
                           hierarchy_names: list[str]) -> str | None:
    """Concretize one abstract op against the current document state.

    Returns ``None`` when the op has no valid target (e.g. an element
    op over a document that currently has no elements).
    """
    kind = op["kind"]
    if kind == "add-markup-leaves":
        if not leaf_count:
            return None
        first = op["index"] % leaf_count + 1
        last = op["index2"] % leaf_count + 1
        if last < first:
            first, last = last, first
        hierarchy = hierarchy_names[op["hierarchy"]
                                    % len(hierarchy_names)]
        return (f"add markup {op['name']} to \"{hierarchy}\" covering "
                f"/descendant::leaf()[position() >= {first} and "
                f"position() <= {last}]")
    if not element_count:
        return None
    target = f"(/descendant::*)[{op['index'] % element_count + 1}]"
    if kind == "rename":
        return f"rename node {target} as \"{op['name']}\""
    if kind == "replace-value":
        return f"replace value of node {target} with \"{op['text']}\""
    if kind == "delete":
        return f"delete node {target}"
    if kind == "remove-markup":
        return f"remove markup {target}"
    if kind == "insert":
        source = (f"<{op['name']}>{op['text']}</{op['name']}>"
                  if op["text"] else f"<{op['name']}/>")
        location = op["location"]
        prefix = {"into": "into", "into-first": "as first into",
                  "into-last": "as last into", "before": "before",
                  "after": "after"}[location]
        return f"insert node {source} {prefix} {target}"
    if kind == "add-markup":
        hierarchy = hierarchy_names[op["hierarchy"]
                                    % len(hierarchy_names)]
        return (f"add markup {op['name']} to \"{hierarchy}\" "
                f"covering {target}")
    raise AssertionError(f"unknown op kind {kind!r}")
