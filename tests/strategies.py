"""Shared hypothesis strategies for multihierarchical documents."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.errors import CMHError
from repro.cmh import Hierarchy, MultihierarchicalDocument
from repro.cmh.spans import Span, SpanSet

#: A small alphabet keeps texts readable in failure reports while still
#: exercising multi-byte characters.
TEXT_ALPHABET = "ab ϸx"

ELEMENT_NAMES = ("w", "line", "dmg", "res", "seg")


@st.composite
def base_texts(draw, min_size: int = 1, max_size: int = 40) -> str:
    return draw(st.text(alphabet=TEXT_ALPHABET, min_size=min_size,
                        max_size=max_size))


@st.composite
def span_sets(draw, text: str, max_spans: int = 6) -> SpanSet:
    """A properly-nesting span set over ``text``.

    Spans are drawn independently; draws that would properly overlap an
    already accepted span are discarded (not shrunk away), which keeps
    the strategy deterministic per draw sequence.
    """
    spans = SpanSet(text)
    count = draw(st.integers(min_value=0, max_value=max_spans))
    for index in range(count):
        if not text:
            break
        start = draw(st.integers(min_value=0, max_value=len(text)))
        end = draw(st.integers(min_value=start, max_value=len(text)))
        name = draw(st.sampled_from(ELEMENT_NAMES))
        try:
            spans.add(Span(start, end, name, depth_hint=index))
        except CMHError:
            continue  # properly overlapping within one hierarchy
    return spans


@st.composite
def multihierarchical_documents(draw, max_hierarchies: int = 3,
                                max_spans: int = 6,
                                min_text: int = 1,
                                max_text: int = 40
                                ) -> MultihierarchicalDocument:
    text = draw(base_texts(min_size=min_text, max_size=max_text))
    document = MultihierarchicalDocument(text)
    n_hierarchies = draw(st.integers(min_value=1,
                                     max_value=max_hierarchies))
    for index in range(n_hierarchies):
        spans = draw(span_sets(text, max_spans=max_spans))
        document.add_hierarchy(
            Hierarchy(f"h{index}", spans.to_document("r")))
    return document
