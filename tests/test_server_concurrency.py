"""Concurrency tests: async HTTP clients racing the single writer.

The PR-4 torn-read methodology (tests/test_store_concurrency.py)
pushed through the HTTP boundary: N async clients issue a
reader/writer mix against an embedded server, and every reader
response must be *byte-identical* to a single-threaded replay of the
same update sequence at the same snapshot version.  The server's
deterministic JSON encoding (sorted keys, compact separators, the
plan-cache flag kept out of the body) is exactly what makes that
comparison possible.

Scaled up by the nightly CI profile: client and batch counts follow
``settings.default.max_examples`` (tests/conftest.py) and the
``REPRO_SERVE_CLIENTS`` / ``REPRO_SERVE_BATCHES`` /
``REPRO_SERVE_MIN_READS`` knobs.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest
from hypothesis import settings

from repro.api import Engine
from repro.corpus.boethius import boethius_document
from repro.server import ServerConfig, ServerHandle
from repro.server.http import json_bytes
from repro.store import DocumentStore

#: nightly profile (max_examples=1000) lifts these automatically
_SCALE = settings.default.max_examples
CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS",
                             str(max(4, _SCALE // 100))))
BATCHES = int(os.environ.get("REPRO_SERVE_BATCHES",
                             str(max(12, _SCALE // 25))))
MIN_READS = int(os.environ.get("REPRO_SERVE_MIN_READS",
                               str(max(6, _SCALE // 50))))

PROBES = [
    "count(/descendant::*)",
    "for $n in /descendant::* return name($n)",
    "/descendant::line[overlapping::w or xdescendant::w]/string(.)",
]

_CYCLE = [
    'rename node /descendant::w[1] as "wx"',
    'rename node /descendant::wx[1] as "w"',
    'insert node <note>burst</note> after /descendant::w[2]',
    "delete node /descendant::note[1]",
]


def _batches() -> list[list[str]]:
    return [[_CYCLE[index % len(_CYCLE)]] for index in range(BATCHES)]


def _expected_bodies() -> dict[int, dict[str, bytes]]:
    """Single-threaded replay: version -> probe -> exact body bytes."""
    engine = Engine(boethius_document(validate=False))

    def bodies() -> dict[str, bytes]:
        out = {}
        for probe in PROBES:
            items = engine.query(probe).strings()
            out[probe] = json_bytes({
                "items": items, "name": "boe", "next": None,
                "offset": 0, "snapshot_version": engine.version,
                "total": len(items)})
        return out

    expected = {engine.version: bodies()}
    for batch in _batches():
        for statement in batch:
            engine.update(statement)
        expected[engine.version] = bodies()
    return expected


class AsyncClient:
    """A keep-alive HTTP/1.1 client on asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "AsyncClient":
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def exchange(self, method: str, path: str,
                       payload: dict | None = None
                       ) -> tuple[int, bytes]:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else b"")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Content-Length: {len(body)}\r\n\r\n")
        self.writer.write(head.encode("ascii") + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        reply = await self.reader.readexactly(length)
        return status, reply


@pytest.fixture()
def fresh(tmp_path):
    store = DocumentStore.init(tmp_path / "catalog")
    store.add("boe", boethius_document(validate=False))
    with ServerHandle(store) as handle:
        yield handle, store
    store.close()


class TestHttpReadersVsWriter:
    def test_responses_byte_identical_to_replay(self, fresh):
        handle, store = fresh
        expected = _expected_bodies()
        errors: list[str] = []
        observations: list[tuple[int, int]] = []
        writer_done = asyncio.Event()

        async def writer() -> None:
            try:
                async with AsyncClient(handle.host,
                                       handle.port) as client:
                    for batch in _batches():
                        status, body = await client.exchange(
                            "POST", "/update",
                            {"name": "boe", "statements": batch})
                        if status != 200:
                            errors.append(
                                f"writer got {status}: {body!r}")
                            return
            finally:
                writer_done.set()

        async def reader(identity: int) -> None:
            try:
                async with AsyncClient(handle.host,
                                       handle.port) as client:
                    rounds = 0
                    while rounds < MIN_READS \
                            or not writer_done.is_set():
                        probe = PROBES[rounds % len(PROBES)]
                        from urllib.parse import quote
                        status, body = await client.exchange(
                            "GET", "/query?name=boe&q="
                            + quote(probe, safe=""))
                        if status != 200:
                            errors.append(
                                f"reader {identity} got {status}: "
                                f"{body!r}")
                            return
                        version = json.loads(body)[
                            "snapshot_version"]
                        reference = expected.get(version, {}).get(
                            probe)
                        if reference is None:
                            errors.append(
                                f"reader {identity} saw unpublished "
                                f"version {version}")
                            return
                        if body != reference:
                            errors.append(
                                f"reader {identity} tore at "
                                f"v{version} on {probe!r}")
                            return
                        observations.append((identity, version))
                        rounds += 1
            except Exception as error:  # pragma: no cover
                errors.append(f"reader {identity}: {error!r}")

        async def drive() -> None:
            tasks = [writer()]
            tasks += [reader(identity)
                      for identity in range(CLIENTS)]
            await asyncio.gather(*tasks)

        asyncio.run(drive())
        assert not errors, errors[:5]
        # every reader met its quota
        seen = {identity for identity, _version in observations}
        assert seen == set(range(CLIENTS))
        # the final store state is the replay's final state
        final = store.snapshot("boe")
        assert final.version == max(expected)
        final.engine.goddag.check_invariants()

    def test_identical_concurrent_queries_byte_identical(self, fresh):
        """The plan-cache race (miss on first call, hits after) must
        be invisible in response bodies."""
        handle, _store = fresh
        path = "/query?name=boe&q=count(/descendant::*)"

        async def one() -> bytes:
            async with AsyncClient(handle.host,
                                   handle.port) as client:
                status, body = await client.exchange("GET", path)
                assert status == 200
                return body

        async def drive() -> list[bytes]:
            return await asyncio.gather(
                *(one() for _client in range(CLIENTS * 2)))

        bodies = asyncio.run(drive())
        assert len(set(bodies)) == 1
        # and the follow-up (certain cache hit) is the same bytes too
        _status, _headers, after = handle.request("GET", path)
        assert after == bodies[0]

    def test_streamed_equals_paged_under_concurrency(self, fresh):
        handle, _store = fresh
        query = "/query?name=boe&q=/descendant::*"

        async def streamed() -> list[str]:
            reader, writer = await asyncio.open_connection(
                handle.host, handle.port)
            writer.write(
                f"GET {query}&stream=1 HTTP/1.1\r\n"
                f"Connection: close\r\n\r\n".encode("ascii"))
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            await writer.wait_closed()
            _head, _, rest = raw.partition(b"\r\n\r\n")
            lines = []
            while rest:
                size_text, _, rest = rest.partition(b"\r\n")
                size = int(size_text, 16)
                if size == 0:
                    break
                lines.append(json.loads(rest[:size]))
                rest = rest[size + 2:]
            assert "total" in lines[0]
            return lines[1:]

        async def paged() -> list[str]:
            async with AsyncClient(handle.host,
                                   handle.port) as client:
                items, offset = [], 0
                while offset is not None:
                    _status, body = await client.exchange(
                        "GET", f"{query}&offset={offset}&limit=3")
                    page = json.loads(body)
                    items.extend(page["items"])
                    offset = page["next"]
                return items

        async def drive():
            return await asyncio.gather(
                *(streamed() if index % 2 else paged()
                  for index in range(max(CLIENTS, 4))))

        results = asyncio.run(drive())
        assert all(result == results[0] for result in results)
        assert len(results[0]) > 0

    def test_inflight_never_exceeds_limit(self, tmp_path):
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        config = ServerConfig(max_inflight=2, max_queue=64)
        with ServerHandle(store, config) as handle:
            async def one() -> int:
                async with AsyncClient(handle.host,
                                       handle.port) as client:
                    status, _body = await client.exchange(
                        "GET", "/query?name=boe"
                               "&q=count(/descendant::*)")
                    return status

            async def drive() -> list[int]:
                return await asyncio.gather(
                    *(one() for _client in range(12)))

            statuses = asyncio.run(drive())
            assert statuses == [200] * 12
            stats = handle.get_json("/statz")[1]
            assert 1 <= stats["peak_inflight"] <= 2
            assert stats["inflight"] == 0
            assert stats["queued"] == 0
        store.close()

    def test_tenant_counters_consistent_under_load(self, fresh):
        """The single-mutator counter discipline: per-tenant served
        counts must sum exactly to the number of 200 responses the
        clients saw, even under full concurrency."""
        handle, _store = fresh
        tenants = [f"tenant-{index}" for index in range(4)]

        async def one(tenant: str) -> int:
            reader, writer = await asyncio.open_connection(
                handle.host, handle.port)
            writer.write(
                b"GET /query?name=boe&q=count(//w) HTTP/1.1\r\n"
                b"X-Tenant: " + tenant.encode("ascii")
                + b"\r\nConnection: close\r\n\r\n")
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            await writer.wait_closed()
            return int(raw.split()[1])

        async def drive() -> list[int]:
            jobs = [one(tenants[index % len(tenants)])
                    for index in range(CLIENTS * len(tenants))]
            return await asyncio.gather(*jobs)

        statuses = asyncio.run(drive())
        assert statuses == [200] * (CLIENTS * len(tenants))
        stats = handle.get_json("/statz")[1]
        for tenant in tenants:
            assert stats["tenants"][tenant]["served"] == CLIENTS
            assert stats["tenants"][tenant]["rejected"] == 0
