"""Unit tests for the DOM layer: navigation, mutation, ordering."""

from __future__ import annotations

import pytest

from repro.markup import parse
from repro.markup.dom import Attr, Comment, Document, Element, Text


@pytest.fixture()
def tree() -> Document:
    return parse('<r><a x="1">one<b/>two</a><c><d/></c></r>')


class TestNavigation:
    def test_root(self, tree):
        assert tree.root.name == "r"

    def test_root_raises_without_element(self):
        with pytest.raises(ValueError):
            Document().root

    def test_owner_document(self, tree):
        d = tree.root.find("d")
        assert d.owner_document is tree

    def test_ancestors(self, tree):
        d = tree.root.find("d")
        names = [getattr(node, "name", "#doc") for node in d.ancestors()]
        assert names == ["c", "r", "#doc"]

    def test_root_element_of_detached(self):
        element = Element("solo")
        assert element.root_element() is element

    def test_siblings(self, tree):
        a = tree.root.find("a")
        following = a.following_sibling_nodes
        assert [n.name for n in following] == ["c"]
        c = tree.root.find("c")
        assert [n.name for n in c.preceding_sibling_nodes] == ["a"]

    def test_iter_preorder(self, tree):
        names = [node.name for node in tree.root.iter()
                 if isinstance(node, Element)]
        assert names == ["r", "a", "b", "c", "d"]

    def test_iter_elements_filter(self, tree):
        assert [e.name for e in tree.root.iter_elements("d")] == ["d"]

    def test_find_and_findall(self, tree):
        assert tree.root.find("b").name == "b"
        assert tree.root.find("missing") is None
        assert len(tree.root.findall("d")) == 1

    def test_child_elements(self, tree):
        assert [e.name for e in tree.root.child_elements()] == ["a", "c"]

    def test_text_content(self, tree):
        assert tree.root.text_content() == "onetwo"


class TestMutation:
    def test_append_reparents(self):
        a, b = Element("a"), Element("b")
        a.append(b)
        assert b.parent is a
        c = Element("c")
        c.append(b)
        assert b.parent is c
        assert a.children == []

    def test_insert(self):
        a = Element("a")
        a.append(Element("x"))
        a.insert(0, Element("first"))
        assert [e.name for e in a.children] == ["first", "x"]

    def test_remove(self):
        a = Element("a")
        b = a.append(Element("b"))
        a.remove(b)
        assert a.children == [] and b.parent is None

    def test_remove_non_child_raises(self):
        with pytest.raises(ValueError):
            Element("a").remove(Element("b"))

    def test_replace(self):
        a = Element("a")
        old = a.append(Element("old"))
        new = Element("new")
        a.replace(old, new)
        assert a.children == [new] and old.parent is None

    def test_detach(self):
        a = Element("a")
        b = a.append(Element("b"))
        b.detach()
        assert a.children == []

    def test_normalize_merges_text(self):
        a = Element("a")
        a.append(Text("x"))
        a.append(Text("y"))
        a.append(Text(""))
        a.normalize()
        assert len(a.children) == 1
        assert a.children[0].data == "xy"


class TestAttributes:
    def test_get_set_delete(self):
        a = Element("a", {"x": "1"})
        assert a.get("x") == "1"
        assert a.get("y", "dflt") == "dflt"
        a.set("y", "2")
        assert a.get("y") == "2"
        a.delete_attribute("x")
        assert a.get("x") is None

    def test_attribute_nodes(self):
        a = Element("a", {"x": "1", "y": "2"})
        nodes = a.attribute_nodes
        assert [(n.name, n.value) for n in nodes] == [("x", "1"),
                                                      ("y", "2")]
        assert all(isinstance(n, Attr) and n.owner is a for n in nodes)

    def test_attribute_nodes_track_updates(self):
        a = Element("a", {"x": "1"})
        _first = a.attribute_nodes
        a.set("x", "9")
        assert a.attribute_nodes[0].value == "9"

    def test_attr_text_content(self):
        assert Attr("n", "v", Element("a")).text_content() == "v"

    def test_prefix_and_local_name(self):
        assert Element("tei:w").prefix == "tei"
        assert Element("tei:w").local_name == "w"
        assert Element("w").prefix is None
        assert Element("w").local_name == "w"


class TestDocumentOrder:
    def test_positions_monotone(self, tree):
        order = tree.document_order()
        a = tree.root.find("a")
        b = tree.root.find("b")
        c = tree.root.find("c")
        assert order[id(a)] < order[id(b)] < order[id(c)]

    def test_attributes_follow_owner(self, tree):
        order = tree.document_order()
        a = tree.root.find("a")
        attr = a.attribute_nodes[0]
        assert order[id(a)] < order[id(attr)] < order[id(a.children[0])]

    def test_comment_text_nodes_ordered(self):
        doc = parse("<a>x<!--c-->y</a>")
        order = doc.document_order()
        x, comment, y = doc.root.children
        assert isinstance(comment, Comment)
        assert order[id(x)] < order[id(comment)] < order[id(y)]
