"""Tests for the Boethius sample and the synthetic generators."""

from __future__ import annotations

from repro.cmh.spans import spans_of
from repro.core.goddag import KyGoddag
from repro.corpus import (
    BASE_TEXT,
    ENCODINGS,
    GeneratorConfig,
    boethius_cmh,
    boethius_document,
    boethius_goddag,
    generate_document,
)
from repro.corpus.tei import generate_tei_document
from repro.corpus.vocabulary import WordSource


class TestBoethius:
    def test_encodings_align_with_base_text(self):
        document = boethius_document(validate=False)
        assert document.text == BASE_TEXT
        assert set(document.hierarchy_names) == set(ENCODINGS)

    def test_cmh_and_dtds_validate(self):
        document = boethius_document(validate=True)
        assert document.cmh is not None
        assert document.cmh.root == "r"

    def test_cmh_element_ownership(self):
        cmh = boethius_cmh()
        assert cmh.hierarchy_of_element("line") == "physical"
        assert cmh.hierarchy_of_element("res") == "restoration"

    def test_goddag_shape(self):
        goddag = boethius_goddag()
        assert len(goddag.partition) == 16
        assert len(list(goddag.elements())) == 16

    def test_singallice_crosses_lines(self):
        goddag = boethius_goddag()
        singallice = next(w for w in goddag.elements("w")
                          if w.string_value() == "singallice")
        lines = [n for n in goddag.elements("line")]
        assert lines[0].end > singallice.start  # starts inside line 1
        assert lines[1].start < singallice.end  # ends inside line 2


class TestGenerator:
    def test_deterministic(self):
        config = GeneratorConfig(n_words=80, seed=42)
        first = generate_document(config)
        second = generate_document(config)
        assert first.text == second.text
        for name in first.hierarchy_names:
            a = [(s.start, s.end, s.name)
                 for s in spans_of(first[name].document)]
            b = [(s.start, s.end, s.name)
                 for s in spans_of(second[name].document)]
            assert a == b

    def test_different_seeds_differ(self):
        a = generate_document(GeneratorConfig(n_words=80, seed=1))
        b = generate_document(GeneratorConfig(n_words=80, seed=2))
        assert a.text != b.text

    def test_all_hierarchies_present_and_aligned(self):
        document = generate_document(GeneratorConfig(n_words=60, seed=5))
        assert set(document.hierarchy_names) == {
            "structural", "physical", "damage", "restoration"}
        document.verify_alignment()

    def test_word_count_respected(self):
        document = generate_document(GeneratorConfig(n_words=60, seed=5))
        words = list(document["structural"].document.root
                     .iter_elements("w"))
        assert len(words) == 60

    def test_goddag_buildable(self):
        document = generate_document(GeneratorConfig(n_words=60, seed=5))
        goddag = KyGoddag.build(document)
        assert len(goddag.partition) > 60

    def test_hyphenation_creates_line_word_overlap(self):
        document = generate_document(GeneratorConfig(
            n_words=200, seed=9, hyphenation_rate=0.9))
        goddag = KyGoddag.build(document)
        from repro.core.goddag import evaluate_axis

        overlapping_words = [
            line for line in goddag.elements("line")
            if any(n.name == "w" for n in
                   evaluate_axis(goddag, "overlapping", line))
        ]
        assert overlapping_words

    def test_zero_rates_mean_no_feature_spans(self):
        document = generate_document(GeneratorConfig(
            n_words=50, seed=3, damage_rate=0.0, restoration_rate=0.0))
        assert not list(document["damage"].document.root
                        .iter_elements("dmg"))

    def test_damage_spans_present_at_positive_rate(self):
        document = generate_document(GeneratorConfig(
            n_words=200, seed=3, damage_rate=0.2))
        assert list(document["damage"].document.root
                    .iter_elements("dmg"))

    def test_pages_optional(self):
        document = generate_document(GeneratorConfig(
            n_words=120, seed=4, words_per_page=40))
        assert list(document["physical"].document.root
                    .iter_elements("page"))


class TestTeiFlavor:
    def test_renamed_elements(self):
        document = generate_tei_document(
            GeneratorConfig(n_words=60, seed=5, damage_rate=0.3))
        assert document.root_name == "TEI"
        structural = document["structural"].document
        assert list(structural.root.iter_elements("l"))
        damage = document["damage"].document
        assert list(damage.root.iter_elements("damage"))

    def test_alignment_preserved(self):
        document = generate_tei_document(GeneratorConfig(n_words=60,
                                                         seed=5))
        document.verify_alignment()
        KyGoddag.build(document)


class TestWordSource:
    def test_deterministic_stream(self):
        assert list(WordSource(1).words(10)) == list(WordSource(1).words(10))

    def test_words_nonempty(self):
        assert all(WordSource(2).words(200))

    def test_seed_words_appear(self):
        words = set(WordSource(3, seed_word_rate=1.0).words(50))
        from repro.corpus.vocabulary import SEED_WORDS

        assert words <= set(SEED_WORDS)
