"""Protocol-level tests for the query service (DESIGN.md §14).

Request parsing, deterministic response encoding, the pagination
envelope (``total``/``offset``/``next``), chunked stream framing, the
access-log schema, and the ``/statz`` counters — everything below the
concurrency and chaos packs.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

import pytest

from repro.corpus.boethius import boethius_document
from repro.server import ServerConfig, ServerHandle
from repro.server.http import (
    LAST_CHUNK,
    HttpError,
    Request,
    chunk,
    error_response,
    json_bytes,
    read_request,
    response,
    stream_head,
)
from repro.store import DocumentStore


def parse_request(raw: bytes, *, body_limit: int = 1 << 20,
                  limit: int = 8192) -> Request | None:
    """Run :func:`read_request` over an in-memory stream."""
    async def go():
        reader = asyncio.StreamReader(limit=limit)
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, body_limit=body_limit)
    return asyncio.run(go())


def http_status(raw: bytes, *, body_limit: int = 1 << 20) -> int:
    with pytest.raises(HttpError) as caught:
        parse_request(raw, body_limit=body_limit)
    return caught.value.status


class TestRequestParsing:
    def test_get_with_params(self):
        request = parse_request(
            b"GET /query?name=boe&q=count(//w)&offset=4 HTTP/1.1\r\n"
            b"Host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/query"
        assert request.params == {"name": "boe", "q": "count(//w)",
                                  "offset": "4"}
        assert request.body == b""
        assert not request.close

    def test_post_body_via_content_length(self):
        body = b'{"name":"boe"}'
        request = parse_request(
            b"POST /update HTTP/1.1\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        assert request.body == body
        assert request.json() == {"name": "boe"}

    def test_blank_param_values_kept(self):
        request = parse_request(b"GET /query?limit=&q=x HTTP/1.1\r\n\r\n")
        assert request.params == {"limit": "", "q": "x"}

    def test_connection_close_header(self):
        request = parse_request(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.close

    def test_http_10_implies_close(self):
        request = parse_request(b"GET /healthz HTTP/1.0\r\n\r\n")
        assert request.close

    def test_clean_eof_is_none(self):
        assert parse_request(b"") is None

    def test_mid_request_disconnect_raises_incomplete(self):
        with pytest.raises(asyncio.IncompleteReadError):
            parse_request(b"GET /healthz HTTP/1.1\r\nHost: x\r\n")

    def test_body_shorter_than_content_length_is_disconnect(self):
        with pytest.raises(asyncio.IncompleteReadError):
            parse_request(b"POST /update HTTP/1.1\r\n"
                          b"Content-Length: 50\r\n\r\n{\"na")

    def test_malformed_request_line_400(self):
        assert http_status(b"GARBAGE\r\n\r\n") == 400

    def test_wrong_protocol_400(self):
        assert http_status(b"GET / SPDY/9\r\n\r\n") == 400

    def test_non_ascii_request_line_400(self):
        assert http_status(b"GET /\xff\xfe HTTP/1.1\r\n\r\n") == 400

    def test_malformed_header_400(self):
        assert http_status(
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n") == 400

    def test_too_many_headers_431(self):
        headers = b"".join(b"X-H%d: v\r\n" % index
                           for index in range(200))
        assert http_status(
            b"GET / HTTP/1.1\r\n" + headers + b"\r\n") == 431

    def test_oversized_request_line_431(self):
        raw = b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n"
        assert http_status(raw) == 431

    def test_bad_content_length_400(self):
        assert http_status(b"POST / HTTP/1.1\r\n"
                           b"Content-Length: nope\r\n\r\n") == 400

    def test_negative_content_length_400(self):
        assert http_status(b"POST / HTTP/1.1\r\n"
                           b"Content-Length: -5\r\n\r\n") == 400

    def test_chunked_request_body_rejected_400(self):
        assert http_status(b"POST / HTTP/1.1\r\n"
                           b"Transfer-Encoding: chunked\r\n\r\n") == 400

    def test_body_over_limit_413(self):
        assert http_status(
            b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
            body_limit=10) == 413

    def test_tenant_header_and_default(self):
        request = parse_request(b"GET / HTTP/1.1\r\n\r\n")
        assert request.tenant == "public"
        request = parse_request(
            b"GET / HTTP/1.1\r\nX-Tenant: acme\r\n\r\n")
        assert request.tenant == "acme"

    def test_json_body_must_be_object(self):
        request = Request("POST", "/update", {}, {}, body=b"[1,2]")
        with pytest.raises(HttpError) as caught:
            request.json()
        assert caught.value.status == 400
        assert "expected an object" in caught.value.message

    def test_json_body_invalid_400(self):
        request = Request("POST", "/update", {}, {}, body=b"{nope")
        with pytest.raises(HttpError) as caught:
            request.json()
        assert caught.value.status == 400
        assert "invalid JSON body" in caught.value.message


class TestResponseEncoding:
    def test_json_bytes_deterministic(self):
        first = json_bytes({"b": 1, "a": [2, 3]})
        second = json_bytes(dict(reversed(list(
            {"b": 1, "a": [2, 3]}.items()))))
        assert first == second == b'{"a":[2,3],"b":1}\n'

    def test_response_frames_content_length(self):
        body = json_bytes({"ok": True})
        raw = response(200, body)
        head, _, tail = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: keep-alive" in head
        assert tail == body

    def test_response_close_header(self):
        raw = response(200, b"{}", close=True)
        assert b"Connection: close" in raw

    def test_error_response_renders_retry_after(self):
        raw = error_response(HttpError(429, "slow down",
                                       retry_after=7))
        assert b"HTTP/1.1 429 Too Many Requests" in raw
        assert b"Retry-After: 7" in raw
        assert b'{"error":"slow down"}' in raw

    def test_chunk_framing(self):
        data = b'{"x":1}\n'
        framed = chunk(data)
        assert framed == b"8\r\n" + data + b"\r\n"
        assert LAST_CHUNK == b"0\r\n\r\n"

    def test_stream_head_declares_chunked(self):
        head = stream_head()
        assert b"Transfer-Encoding: chunked" in head
        assert b"application/x-ndjson" in head


# -- endpoint tests ----------------------------------------------------------


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A read-mostly embedded server plus its captured access log."""
    root = tmp_path_factory.mktemp("serve-http")
    store = DocumentStore.init(root / "catalog")
    store.add("boe", boethius_document(validate=False))
    log: list[dict] = []
    handle = ServerHandle(store, ServerConfig(access_log=log.append))
    yield handle, store, log
    handle.close()
    store.close()


def raw_exchange(handle: ServerHandle, payload: bytes,
                 recv_until_close: bool = True) -> bytes:
    """One raw TCP exchange (for framing-level assertions)."""
    with socket.create_connection((handle.host, handle.port),
                                  timeout=30) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        blocks = []
        while True:
            block = sock.recv(65536)
            if not block:
                break
            blocks.append(block)
        return b"".join(blocks)


def parse_chunked(raw: bytes) -> tuple[bytes, list[bytes]]:
    """``(head, chunks)`` of one chunked response."""
    head, _, rest = raw.partition(b"\r\n\r\n")
    chunks = []
    while rest:
        size_text, _, rest = rest.partition(b"\r\n")
        size = int(size_text, 16)
        if size == 0:
            break
        chunks.append(rest[:size])
        assert rest[size:size + 2] == b"\r\n"
        rest = rest[size + 2:]
    return head, chunks


class TestQueryEndpoint:
    def test_healthz(self, served):
        handle, _store, _log = served
        status, payload = handle.get_json("/healthz")
        assert status == 200
        assert payload == {"corpora": 0, "documents": 1,
                           "draining": False, "status": "ok"}

    def test_query_envelope(self, served):
        handle, store, _log = served
        status, payload = handle.get_json(
            "/query?name=boe&q=/descendant::w")
        assert status == 200
        version = store.snapshot("boe").version
        assert payload["name"] == "boe"
        assert payload["snapshot_version"] == version
        assert payload["offset"] == 0
        assert payload["next"] is None
        assert payload["total"] == len(payload["items"]) == 6
        assert all(item.startswith("<w>") for item in payload["items"])

    def test_pagination_walk_covers_everything(self, served):
        handle, _store, _log = served
        _status, full = handle.get_json(
            "/query?name=boe&q=/descendant::w")
        walked, offset = [], 0
        while offset is not None:
            status, page = handle.get_json(
                f"/query?name=boe&q=/descendant::w"
                f"&offset={offset}&limit=2")
            assert status == 200
            assert page["total"] == full["total"]
            assert page["offset"] == offset
            assert len(page["items"]) <= 2
            walked.extend(page["items"])
            offset = page["next"]
        assert walked == full["items"]

    def test_offset_beyond_end(self, served):
        handle, _store, _log = served
        status, payload = handle.get_json(
            "/query?name=boe&q=/descendant::w&offset=99")
        assert status == 200
        assert payload["items"] == []
        assert payload["next"] is None
        assert payload["total"] == 6

    def test_bad_offset_and_limit_400(self, served):
        handle, _store, _log = served
        assert handle.get_json(
            "/query?name=boe&q=count(//w)&offset=-1")[0] == 400
        assert handle.get_json(
            "/query?name=boe&q=count(//w)&limit=0")[0] == 400
        assert handle.get_json(
            "/query?name=boe&q=count(//w)&limit=nope")[0] == 400

    def test_missing_query_text_400(self, served):
        handle, _store, _log = served
        status, payload = handle.get_json("/query?name=boe")
        assert status == 400
        assert "q" in payload["error"]

    def test_missing_name_400(self, served):
        handle, _store, _log = served
        assert handle.get_json("/query?q=count(//w)")[0] == 400

    def test_plan_cache_header_not_body(self, served):
        handle, _store, _log = served
        query = "/query?name=boe&q=count(/descendant::line)"
        first = handle.request("GET", query)
        second = handle.request("GET", query)
        assert first[0] == second[0] == 200
        assert second[1]["x-plan-cache"] == "hit"
        # the hit flag must never leak into the body: replay
        # byte-identity depends on it
        assert first[2] == second[2]
        assert b"plan" not in first[2]

    def test_post_body_equivalent_to_query_string(self, served):
        handle, _store, _log = served
        get_body = handle.request(
            "GET", "/query?name=boe&q=count(//w)")[2]
        post_body = handle.request(
            "POST", "/query", {"name": "boe", "q": "count(//w)"})[2]
        assert get_body == post_body

    def test_xpath_mode(self, served):
        handle, _store, _log = served
        status, payload = handle.get_json(
            "/query?name=boe&q=/descendant::w[1]/string(.)&xpath=1")
        assert status == 200
        assert payload["items"] == ["gesceaftum"]

    def test_explain(self, served):
        handle, _store, _log = served
        status, payload = handle.get_json(
            "/explain?q=count(/descendant::w)")
        assert status == 200
        assert payload["mode"] == "query"
        assert "count" in payload["explain"]
        status, payload = handle.get_json(
            "/explain?q=/descendant::w&xpath=1")
        assert status == 200
        assert payload["mode"] == "xpath"

    def test_unknown_endpoint_404(self, served):
        handle, _store, _log = served
        status, payload = handle.get_json("/nope")
        assert status == 404
        assert "/nope" in payload["error"]

    def test_method_not_allowed_405(self, served):
        handle, _store, _log = served
        status, payload = handle.get_json("/update")
        assert status == 405
        assert "POST" in payload["error"]

    def test_keep_alive_two_requests_one_connection(self, served):
        handle, _store, _log = served
        raw = raw_exchange(
            handle,
            b"GET /healthz HTTP/1.1\r\n\r\n"
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert raw.count(b"HTTP/1.1 200 OK") == 2
        assert b"Connection: keep-alive" in raw
        assert b"Connection: close" in raw


class TestStreaming:
    def test_stream_is_chunked_ndjson(self, served):
        handle, _store, _log = served
        raw = raw_exchange(
            handle,
            b"GET /query?name=boe&q=/descendant::w&stream=1 "
            b"HTTP/1.1\r\nConnection: close\r\n\r\n")
        head, chunks = parse_chunked(raw)
        assert b"Transfer-Encoding: chunked" in head
        assert b"application/x-ndjson" in head
        # one chunk per NDJSON line: meta first, then one per item
        assert len(chunks) == 1 + 6
        meta = json.loads(chunks[0])
        assert meta["total"] == 6
        assert "items" not in meta
        items = [json.loads(part) for part in chunks[1:]]
        _status, plain = handle.get_json(
            "/query?name=boe&q=/descendant::w")
        assert items == plain["items"]

    def test_stream_respects_pagination(self, served):
        handle, _store, _log = served
        raw = raw_exchange(
            handle,
            b"GET /query?name=boe&q=/descendant::w&stream=1"
            b"&offset=1&limit=2 HTTP/1.1\r\nConnection: close\r\n\r\n")
        _head, chunks = parse_chunked(raw)
        meta = json.loads(chunks[0])
        assert meta["offset"] == 1
        assert meta["next"] == 3
        assert len(chunks) == 1 + 2

    def test_streamed_chunk_counter(self, served):
        handle, _store, _log = served
        before = handle.get_json("/statz")[1]["streamed_chunks"]
        raw_exchange(
            handle,
            b"GET /query?name=boe&q=/descendant::w&stream=1&limit=3 "
            b"HTTP/1.1\r\nConnection: close\r\n\r\n")
        after = handle.get_json("/statz")[1]["streamed_chunks"]
        assert after - before == 1 + 3


class TestUpdateEndpoint:
    @pytest.fixture()
    def fresh(self, tmp_path):
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        with ServerHandle(store) as handle:
            yield handle, store
        store.close()

    def test_update_envelope_and_version_bump(self, fresh):
        handle, store = fresh
        before = store.snapshot("boe").version
        status, payload = handle.post_json("/update", {
            "name": "boe",
            "statements": [
                'rename node /descendant::w[1] as "wx"',
                'rename node /descendant::wx[1] as "w"',
            ]})
        assert status == 200
        assert payload["applied"] == 2
        assert payload["name"] == "boe"
        assert [entry["counts"] for entry in payload["results"]] == \
            [{"rename": 1}, {"rename": 1}]
        assert payload["version"] == store.snapshot("boe").version
        assert payload["version"] > before

    def test_update_visible_to_next_query(self, fresh):
        handle, _store = fresh
        handle.post_json("/update", {
            "name": "boe",
            "statements": ['rename node /descendant::w[1] as "tok"']})
        status, payload = handle.get_json(
            "/query?name=boe&q=count(/descendant::tok)")
        assert status == 200
        assert payload["items"] == ["1"]

    def test_statement_string_promoted_to_list(self, fresh):
        handle, _store = fresh
        status, payload = handle.post_json("/update", {
            "name": "boe",
            "statements": 'rename node /descendant::w[1] as "wx"'})
        assert status == 200
        assert payload["applied"] == 1

    def test_get_update_rejected(self, fresh):
        handle, _store = fresh
        assert handle.get_json("/update?name=boe")[0] == 405


class TestObservability:
    def test_statz_counters(self, served):
        handle, _store, _log = served
        handle.get_json("/query?name=boe&q=count(//w)")
        status, stats = handle.get_json("/statz")
        assert status == 200
        assert stats["inflight"] == 0
        assert stats["queued"] == 0
        assert stats["peak_inflight"] >= 1
        assert stats["endpoints"]["/query"] >= 1
        assert stats["responses"]["200"] >= 1
        assert stats["requests"] >= stats["served"] - 1
        cache = stats["plan_cache"]
        assert set(cache) == {"capacity", "hits", "misses", "size"}
        assert cache["hits"] + cache["misses"] >= cache["size"]
        assert stats["quota"] == {"burst": 1.0, "enabled": False,
                                  "qps": 0.0}
        assert stats["tenants"]["public"]["served"] >= 1

    def test_statz_per_tenant_split(self, served):
        handle, _store, _log = served
        handle.get_json("/query?name=boe&q=count(//w)",
                        headers={"X-Tenant": "acme"})
        _status, stats = handle.get_json("/statz")
        assert stats["tenants"]["acme"]["served"] >= 1
        assert stats["tenants"]["acme"]["rejected"] == 0

    def test_access_log_schema(self, served):
        handle, _store, log = served
        log.clear()
        handle.get_json("/query?name=boe&q=count(/descendant::seg)",
                        headers={"X-Tenant": "logged"})
        # log entries land on the event loop after the response bytes
        deadline = time.monotonic() + 5.0
        while not log and time.monotonic() < deadline:
            time.sleep(0.005)
        entry = log[-1]
        assert sorted(entry) == [
            "act_rows", "bytes_out", "cost_fallbacks", "est_rows",
            "latency_ms", "method", "path", "plan_cache_hit",
            "query_hash", "snapshot_version", "status", "tenant",
            "ts"]
        assert isinstance(entry["cost_fallbacks"], int)
        assert entry["method"] == "GET"
        assert entry["path"] == "/query"
        assert entry["status"] == 200
        assert entry["tenant"] == "logged"
        assert isinstance(entry["bytes_out"], int)
        assert entry["bytes_out"] > 0
        assert isinstance(entry["latency_ms"], float)
        assert isinstance(entry["plan_cache_hit"], bool)
        assert isinstance(entry["snapshot_version"], int)
        assert isinstance(entry["query_hash"], str)
        assert len(entry["query_hash"]) == 16
        # the entry is JSON-serializable as one log line
        assert json.loads(json.dumps(entry)) == entry

    def test_access_log_query_hash_stable(self, served):
        handle, _store, log = served
        log.clear()
        handle.get_json("/query?name=boe&q=count(//w)")
        handle.get_json("/query?name=boe&q=count(//w)")
        handle.get_json("/query?name=boe&q=count(//line)")
        # log entries land on the event loop after the response bytes
        deadline = time.monotonic() + 5.0
        while len(log) < 3 and time.monotonic() < deadline:
            time.sleep(0.005)
        hashes = [entry["query_hash"] for entry in log]
        assert hashes[0] == hashes[1]
        assert hashes[0] != hashes[2]

    def test_access_log_file_sink(self, tmp_path):
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        path = tmp_path / "access.log"
        with path.open("a", encoding="utf-8") as sink:
            with ServerHandle(store,
                              ServerConfig(access_log=sink)) as handle:
                handle.get_json("/healthz")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["path"] == "/healthz"
        store.close()


class TestCorpusEndpoint:
    @pytest.fixture(scope="class")
    def corpus_served(self, tmp_path_factory):
        from repro.corpus.generator import (
            GeneratorConfig,
            generate_document,
        )

        root = tmp_path_factory.mktemp("serve-corpus")
        store = DocumentStore.init(root / "catalog")
        store.add_corpus(
            "corpus",
            generate_document(GeneratorConfig(n_words=1200, seed=0)),
            shards=4)
        with ServerHandle(store) as handle:
            yield handle, store
        store.close()

    def test_cquery_envelope(self, corpus_served):
        handle, store = corpus_served
        status, payload = handle.get_json(
            '/cquery?q=count(collection("corpus")//w)')
        assert status == 200
        assert payload["items"] == ["1200"]
        assert payload["mode"] == "aggregate"
        assert payload["shards_total"] == len(
            store.corpus_stats("corpus").shards)
        assert payload["shards_executed"] + payload["shards_pruned"] \
            == payload["shards_total"]
        assert payload["workers"] == 1

    def test_cquery_matches_store_call(self, corpus_served):
        handle, store = corpus_served
        query = 'collection("corpus")//lb'
        _status, payload = handle.get_json(
            f"/cquery?q={query}")
        direct = store.cquery(query)
        assert payload["items"] == direct.items
        assert payload["total"] == len(direct.items)

    def test_cquery_pagination(self, corpus_served):
        handle, _store = corpus_served
        _status, full = handle.get_json(
            '/cquery?q=collection("corpus")//lb')
        walked, offset = [], 0
        while offset is not None:
            _status, page = handle.get_json(
                '/cquery?q=collection("corpus")//lb'
                f"&offset={offset}&limit=7")
            walked.extend(page["items"])
            offset = page["next"]
        assert walked == full["items"]

    def test_cquery_stream(self, corpus_served):
        handle, _store = corpus_served
        raw = raw_exchange(
            handle,
            b'GET /cquery?q=collection("corpus")//lb&stream=1&limit=5'
            b" HTTP/1.1\r\nConnection: close\r\n\r\n")
        _head, chunks = parse_chunked(raw)
        meta = json.loads(chunks[0])
        assert meta["mode"] in ("scatter", "aggregate", "fused")
        assert len(chunks) == 1 + min(5, meta["total"])

    def test_cquery_unknown_corpus_404(self, corpus_served):
        handle, _store = corpus_served
        status, _payload = handle.get_json(
            '/cquery?q=count(collection("nope")//w)')
        assert status == 404
