"""Tests for analyze-string (Definition 4) and its temp hierarchies."""

from __future__ import annotations

import pytest

from repro.errors import FunctionError
from repro.core.runtime import QueryOptions, evaluate_query, serialize_items
from repro.core.runtime.analyze import compile_pattern


def run_str(goddag, query, **kwargs):
    return serialize_items(evaluate_query(goddag, query, **kwargs))


class TestPatternCompilation:
    def test_plain_pattern_passthrough(self):
        template = compile_pattern("unawe", strip_dotstar=True)
        assert template.source == "unawe"
        assert template.groups == ()

    def test_dotstar_stripping(self):
        assert compile_pattern(".*unawe.*", True).source == "unawe"
        assert compile_pattern(".*?x.*?", True).source == "x"

    def test_stripping_disabled(self):
        assert compile_pattern(".*unawe.*", False).source == ".*unawe.*"

    def test_all_dotstar_kept(self):
        # Stripping everything would empty the pattern; keep original.
        assert compile_pattern(".*", True).source == ".*"

    def test_fragment_tags_become_groups(self):
        template = compile_pattern(".*un<a>a</a>we.*", True)
        assert template.source == "un(?P<_ag0>a)we"
        assert template.groups == (("_ag0", "a", 0),)

    def test_nested_fragment_tags(self):
        template = compile_pattern("<o>x<i>y</i></o>", True)
        assert [g[1] for g in template.groups] == ["o", "i"]
        assert [g[2] for g in template.groups] == [0, 1]

    def test_mismatched_tags_rejected(self):
        with pytest.raises(FunctionError, match="mismatched"):
            compile_pattern("<a>x</b>", True)
        with pytest.raises(FunctionError, match="unclosed"):
            compile_pattern("<a>x", True)

    def test_lookbehind_not_mistaken_for_tag(self):
        template = compile_pattern("(?<=x)y", True)
        assert template.groups == ()

    def test_invalid_regex_reported(self):
        with pytest.raises(FunctionError, match="invalid analyze-string"):
            compile_pattern("(", True)


class TestAnalyzeString:
    def test_example_1_exact(self, goddag):
        query = ('analyze-string(/descendant::w[string(.) = '
                 '"unawendendne"], ".*un<a>a</a>we.*")')
        assert run_str(goddag, query) == \
            "<res><m>un<a>a</a>we</m>ndendne</res>"

    def test_plain_match_wrapped_in_m(self, goddag):
        query = ('analyze-string(/descendant::w[2], "unawe")')
        assert run_str(goddag, query) == "<res><m>unawe</m>ndendne</res>"

    def test_no_match_yields_plain_res(self, goddag):
        query = ('analyze-string(/descendant::w[2], "zzz")')
        assert run_str(goddag, query) == "<res>unawendendne</res>"

    def test_multiple_matches(self, goddag):
        query = ('analyze-string(/descendant::w[2], "nd")')
        assert run_str(goddag, query) == \
            "<res>unawe<m>nd</m>e<m>nd</m>ne</res>"

    def test_result_participates_in_extended_axes(self, goddag):
        query = '''
        let $res := analyze-string(/descendant::w[2], "unawe")
        for $leaf in $res/descendant::leaf()
        return if ($leaf/xancestor::m) then concat("[", string($leaf), "]")
               else string($leaf)
        '''
        # m covers "unawe"; the partition splits it as una|w|e.
        assert run_str(goddag, query) == "[una][w][e]ndendne"

    def test_match_overlapping_persistent_markup(self, goddag):
        # "unawe" overlaps the restoration res1 [0,14): m [11,16)
        # crosses res1's right boundary.
        query = '''
        let $res := analyze-string(/descendant::w[2], "unawe")
        return count($res/xdescendant::m/overlapping::res)
        '''
        assert run_str(goddag, query) == "1"

    def test_temporaries_removed_after_query(self, goddag):
        before = goddag.hierarchy_names
        leaves_before = [l.text for l in goddag.leaves()]
        run_str(goddag, 'analyze-string(/descendant::w[2], "unawe")')
        assert goddag.hierarchy_names == before
        assert [l.text for l in goddag.leaves()] == leaves_before

    def test_result_snapshotted_to_dom(self, goddag):
        from repro.markup import dom

        result = evaluate_query(
            goddag, 'analyze-string(/descendant::w[2], "unawe")')
        assert isinstance(result[0], dom.Element)
        assert result[0].name == "res"

    def test_keep_temporaries_mode(self, goddag):
        from repro.core.goddag.nodes import GElement

        result = evaluate_query(
            goddag, 'analyze-string(/descendant::w[2], "unawe")',
            keep_temporaries=True)
        assert isinstance(result[0], GElement)
        assert any(name.startswith("rest")
                   for name in goddag.hierarchy_names)
        goddag.remove_hierarchy(result[0].hierarchy)

    def test_two_calls_get_distinct_hierarchies(self, goddag):
        query = '''
        let $a := analyze-string(/descendant::w[1], "ge"),
            $b := analyze-string(/descendant::w[2], "un")
        return concat(hierarchy($a), ",", hierarchy($b))
        '''
        result = evaluate_query(goddag, query, keep_temporaries=True)
        names = result[0].split(",")
        assert len(set(names)) == 2
        for name in names:
            goddag.remove_hierarchy(name)

    def test_strip_dotstar_off_matches_whole_string(self, goddag):
        options = QueryOptions(analyze_strip_dotstar=False)
        out = run_str(goddag,
                      'analyze-string(/descendant::w[2], ".*unawe.*")',
                      options=options)
        assert out == "<res><m>unawendendne</m></res>"

    def test_custom_wrapper_names(self, goddag):
        options = QueryOptions(analyze_wrapper="hit", analyze_match="x")
        out = run_str(goddag,
                      'analyze-string(/descendant::w[2], "unawe")',
                      options=options)
        assert out == "<hit><x>unawe</x>ndendne</hit>"

    def test_requires_node_argument(self, goddag):
        with pytest.raises(FunctionError, match="KyGODDAG node"):
            evaluate_query(goddag, 'analyze-string("text", "x")')

    def test_zero_length_matches_skipped(self, goddag):
        out = run_str(goddag, 'analyze-string(/descendant::w[2], "z*")')
        assert out == "<res>unawendendne</res>"

    def test_analyze_on_leaf_node(self, goddag):
        query = 'analyze-string(/descendant::leaf()[1], "sceaf")'
        assert run_str(goddag, query) == \
            "<res>ge<m>sceaf</m>tum</res>"

    def test_analyze_on_line_spanning_words(self, goddag):
        query = 'analyze-string(/descendant::line[1], "um una")'
        assert run_str(goddag, query) == \
            "<res>gesceaft<m>um una</m>wendendne sin</res>"
