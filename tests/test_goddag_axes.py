"""Tests for all axes over the paper's Figure 1/2 document.

Expectations are hand-derived from the Figure 2 KyGODDAG:
spans — line1 [0,27), line2 [27,51); vline1 [0,24), vline2 [24,49),
vline3 [49,51); words gesceaftum [0,10), unawendendne [11,23),
singallice [24,34), sibbe [35,40), gecynde [41,48), ϸa [49,51);
res1 [0,14), res2 [25,27), res3 [27,46); dmg1 [14,15), dmg2 [46,51).
"""

from __future__ import annotations

import pytest

from repro.core.goddag import evaluate_axis
from repro.core.goddag.nodes import GElement, GLeaf, GRoot, GText


def element(goddag, name, index=0):
    return list(goddag.elements(name))[index]


def word(goddag, text):
    return next(w for w in goddag.elements("w")
                if w.string_value() == text)


def names(nodes):
    return sorted(n.name for n in nodes if isinstance(n, GElement))


class TestChildParent:
    def test_child_of_root_crosses_components(self, goddag):
        children = evaluate_axis(goddag, "child", goddag.root)
        assert names(children).count("line") == 2
        assert names(children).count("vline") == 3
        assert names(children).count("res") == 3
        assert names(children).count("dmg") == 2

    def test_child_of_element(self, goddag):
        vline1 = element(goddag, "vline", 0)
        children = evaluate_axis(goddag, "child", vline1)
        assert names(children) == ["w", "w"]
        assert sum(isinstance(c, GText) for c in children) == 2

    def test_child_of_text_is_leaves(self, goddag):
        unaw = word(goddag, "unawendendne")
        text = unaw.children[0]
        leaves = evaluate_axis(goddag, "child", text)
        assert [l.text for l in leaves] == ["una", "w", "endendne"]

    def test_child_of_leaf_empty(self, goddag):
        leaf = goddag.partition.leaf_at(0)
        assert evaluate_axis(goddag, "child", leaf) == []

    def test_parent_of_top_element_is_root(self, goddag):
        line1 = element(goddag, "line", 0)
        assert evaluate_axis(goddag, "parent", line1) == [goddag.root]

    def test_parent_of_leaf_is_one_text_per_hierarchy(self, goddag):
        leaf = goddag.partition.leaf_at(14)  # "w"
        parents = evaluate_axis(goddag, "parent", leaf)
        assert len(parents) == 4
        assert all(isinstance(p, GText) for p in parents)

    def test_parent_of_root_empty(self, goddag):
        assert evaluate_axis(goddag, "parent", goddag.root) == []


class TestDescendantAncestor:
    def test_descendant_of_line_includes_leaves(self, goddag):
        line1 = element(goddag, "line", 0)
        descendants = evaluate_axis(goddag, "descendant", line1)
        leaves = [n for n in descendants if isinstance(n, GLeaf)]
        assert [l.text for l in sorted(leaves, key=lambda l: l.start)] == [
            "gesceaftum", " ", "una", "w", "endendne", " ", "s", "in"]

    def test_descendant_stays_in_hierarchy(self, goddag):
        line1 = element(goddag, "line", 0)
        descendants = evaluate_axis(goddag, "descendant", line1)
        assert names(descendants) == []  # no elements under a line

    def test_descendant_of_root_covers_everything(self, goddag):
        descendants = evaluate_axis(goddag, "descendant", goddag.root)
        assert len(names(descendants)) == 16
        leaf_count = sum(isinstance(n, GLeaf) for n in descendants)
        assert leaf_count == 16

    def test_ancestor_of_leaf_crosses_hierarchies(self, goddag):
        leaf = goddag.partition.leaf_at(14)  # "w" inside dmg1
        ancestors = evaluate_axis(goddag, "ancestor", leaf)
        assert "dmg" in names(ancestors)
        assert "w" in names(ancestors)
        assert "line" in names(ancestors)
        assert any(isinstance(a, GRoot) for a in ancestors)

    def test_ancestor_of_element(self, goddag):
        unaw = word(goddag, "unawendendne")
        ancestors = evaluate_axis(goddag, "ancestor", unaw)
        assert names(ancestors) == ["vline"]

    def test_or_self_variants(self, goddag):
        unaw = word(goddag, "unawendendne")
        self_included = evaluate_axis(goddag, "descendant-or-self", unaw)
        assert unaw in self_included
        assert unaw in evaluate_axis(goddag, "ancestor-or-self", unaw)


class TestSiblingsFollowingPreceding:
    def test_following_sibling(self, goddag):
        w1 = word(goddag, "gesceaftum")
        siblings = evaluate_axis(goddag, "following-sibling", w1)
        assert names(siblings) == ["w"]  # unawendendne (same vline)

    def test_preceding_sibling(self, goddag):
        unaw = word(goddag, "unawendendne")
        siblings = evaluate_axis(goddag, "preceding-sibling", unaw)
        assert names(siblings) == ["w"]

    def test_top_level_siblings_confined_to_component(self, goddag):
        line1 = element(goddag, "line", 0)
        siblings = evaluate_axis(goddag, "following-sibling", line1)
        assert names(siblings) == ["line"]

    def test_following_in_component(self, goddag):
        vline1 = element(goddag, "vline", 0)
        following = evaluate_axis(goddag, "following", vline1)
        assert names(following).count("vline") == 2
        assert names(following).count("w") == 4
        assert "line" not in names(following)

    def test_preceding_in_component(self, goddag):
        vline3 = element(goddag, "vline", 2)
        preceding = evaluate_axis(goddag, "preceding", vline3)
        assert names(preceding).count("vline") == 2

    def test_following_from_root_empty(self, goddag):
        assert evaluate_axis(goddag, "following", goddag.root) == []

    def test_following_from_last_element_returns_trailing_leaves(self):
        """Regression: the seed guarded the trailing-leaf scan with the
        always-true ``node.end <= len(text)``; the slice rewrite must
        still return the leaves after the component's last element."""
        from repro.cmh import MultihierarchicalDocument
        from repro.core.goddag import KyGoddag

        document = MultihierarchicalDocument.from_xml(
            "xyz", {"h": "<r><a>xy</a>z</r>", "g": "<r>x<b>y</b>z</r>"})
        goddag = KyGoddag.build(document)
        last = next(goddag.elements("a"))  # [0,2) — last element of h
        following = evaluate_axis(goddag, "following", last)
        leaves = [n for n in following if isinstance(n, GLeaf)]
        assert [leaf.text for leaf in leaves] == ["z"]
        # Besides the trailing leaf, only h's own trailing text node
        # follows — nothing from the other hierarchy.
        rest = [n for n in following if not isinstance(n, GLeaf)]
        assert [type(n) for n in rest] == [GText]
        assert rest[0].hierarchy == "h"

    def test_following_from_element_ending_at_text_end(self, goddag):
        """An element whose span reaches the very end of the base text
        has following nodes but no trailing leaves."""
        dmg2 = element(goddag, "dmg", 1)  # [46,51) — ends at len(text)
        following = evaluate_axis(goddag, "following", dmg2)
        assert not any(isinstance(n, GLeaf) for n in following)

    def test_attribute_axis(self, goddag):
        # Figure 1 elements carry no attributes; add a synthetic check.
        line1 = element(goddag, "line", 0)
        assert evaluate_axis(goddag, "attribute", line1) == []


class TestExtendedAxes:
    def test_xdescendant_of_line_crosses_hierarchies(self, goddag):
        line1 = element(goddag, "line", 0)  # [0,27)
        result = evaluate_axis(goddag, "xdescendant", line1)
        element_names = names(result)
        # vline1 [0,24), gesceaftum, unawendendne, res1, res2, dmg1.
        assert element_names == ["dmg", "res", "res", "vline", "w", "w"]

    def test_xdescendant_includes_leaves(self, goddag):
        dmg2 = element(goddag, "dmg", 1)  # [46,51)
        result = evaluate_axis(goddag, "xdescendant", dmg2)
        leaves = sorted((n.text for n in result if isinstance(n, GLeaf)))
        assert leaves == [" ", "de", "ϸa"]

    def test_xdescendant_excludes_own_ancestors_on_equal_span(self):
        from repro.cmh import MultihierarchicalDocument
        from repro.core.goddag import KyGoddag

        document = MultihierarchicalDocument.from_xml(
            "xy", {"a": "<r><o><i>xy</i></o></r>"})
        goddag = KyGoddag.build(document)
        inner = next(goddag.elements("i"))
        result = evaluate_axis(goddag, "xdescendant", inner)
        assert names(result) == []  # <o> equal span but is an ancestor

    def test_xancestor_crosses_hierarchies(self, goddag):
        dmg1 = element(goddag, "dmg", 0)  # [14,15) — inside many things
        result = evaluate_axis(goddag, "xancestor", dmg1)
        # line1 [0,27), vline1 [0,24), unawendendne [11,23); res1 ends
        # exactly at 14 and therefore does NOT contain dmg1.
        assert names(result) == ["line", "vline", "w"]
        assert any(isinstance(n, GRoot) for n in result)

    def test_xancestor_includes_own_hierarchy_ancestors(self, goddag):
        unaw = word(goddag, "unawendendne")
        result = evaluate_axis(goddag, "xancestor", unaw)
        assert "vline" in names(result)

    def test_xancestor_of_leaf(self, goddag):
        leaf = goddag.partition.leaf_at(46)  # "de"
        result = evaluate_axis(goddag, "xancestor", leaf)
        assert "dmg" in names(result)
        assert "w" in names(result)  # gecynde

    def test_xfollowing(self, goddag):
        line1 = element(goddag, "line", 0)  # [0,27)
        result = evaluate_axis(goddag, "xfollowing", line1)
        assert "singallice" not in [n.string_value() for n in result
                                    if isinstance(n, GElement)]
        element_names = names(result)
        assert "line" in element_names  # line2
        assert element_names.count("w") == 3  # sibbe, gecynde, ϸa
        assert element_names.count("res") == 1  # res3 [27,46)

    def test_xpreceding(self, goddag):
        dmg2 = element(goddag, "dmg", 1)  # [46,51)
        result = evaluate_axis(goddag, "xpreceding", dmg2)
        element_names = names(result)
        # gecynde [41,48) overlaps dmg2, so only 4 words strictly precede.
        assert element_names.count("w") == 4
        assert "line" in element_names  # line1

    def test_xfollowing_xpreceding_duality(self, goddag):
        line1 = element(goddag, "line", 0)
        following = evaluate_axis(goddag, "xfollowing", line1)
        for node in following:
            back = evaluate_axis(goddag, "xpreceding", node)
            assert line1 in back

    def test_preceding_overlapping(self, goddag):
        # singallice [24,34) starts inside vline1? no — starts inside
        # res... Check gecynde [41,48) vs dmg2 [46,51):
        gecynde = word(goddag, "gecynde")
        result = evaluate_axis(goddag, "preceding-overlapping", dmg2 :=
                               element(goddag, "dmg", 1))
        assert gecynde in result
        del dmg2

    def test_following_overlapping(self, goddag):
        gecynde = word(goddag, "gecynde")
        result = evaluate_axis(goddag, "following-overlapping", gecynde)
        assert names(result) == ["dmg"]

    def test_overlapping_symmetry(self, goddag):
        for node in goddag.elements():
            for other in evaluate_axis(goddag, "overlapping", node):
                back = evaluate_axis(goddag, "overlapping", other)
                assert node in back

    def test_overlapping_line_word(self, goddag):
        singallice = word(goddag, "singallice")  # [24,34) crosses lines
        result = evaluate_axis(goddag, "overlapping", singallice)
        assert names(result).count("line") == 2

    def test_containment_not_overlapping(self, goddag):
        unaw = word(goddag, "unawendendne")
        result = evaluate_axis(goddag, "overlapping", unaw)
        assert "dmg" not in names(result)  # dmg1 is contained, not crossing

    def test_extended_axes_empty_for_empty_span(self):
        from repro.cmh import MultihierarchicalDocument
        from repro.core.goddag import KyGoddag

        document = MultihierarchicalDocument.from_xml(
            "ab", {"a": "<r>a<pb/>b</r>"})
        goddag = KyGoddag.build(document)
        pb = next(goddag.elements("pb"))
        for axis in ("xancestor", "xdescendant", "xfollowing",
                     "xpreceding", "overlapping"):
            assert evaluate_axis(goddag, axis, pb) == []

    def test_unknown_axis_rejected(self, goddag):
        from repro.errors import GoddagError

        with pytest.raises(GoddagError, match="unknown axis"):
            evaluate_axis(goddag, "sideways", goddag.root)


class TestDefinitionOneAlgebra:
    """Definition 1 trichotomy: for two non-empty-span nodes in
    different hierarchies, exactly one of {xfollowing, xpreceding,
    overlap, containment-or-equal} holds."""

    def test_trichotomy(self, goddag):
        nodes = [n for n in goddag.elements()]
        for a in nodes:
            following = set(map(id, evaluate_axis(goddag, "xfollowing", a)))
            preceding = set(map(id, evaluate_axis(goddag, "xpreceding", a)))
            crossing = set(map(id, evaluate_axis(goddag, "overlapping", a)))
            for b in nodes:
                if a is b:
                    continue
                contained = (a.start <= b.start and b.end <= a.end) or \
                            (b.start <= a.start and a.end <= b.end)
                member = [id(b) in following, id(b) in preceding,
                          id(b) in crossing, contained]
                assert sum(member) == 1, (a, b, member)
