"""Cross-shard document-order differential suite (DESIGN.md §13).

The property: for any multihierarchical document, any shard count, and
any query in the matrix, ``collection()`` results over the sharded
corpus are **byte-identical** to the same query over the unsharded
document (the oracle) — regardless of which routing mode the classifier
picks (scatter / aggregate / concat / fused) and regardless of whether
execution is serial in-process or over the worker pool.  The matrix
includes extended-axis steps whose witnesses sit right at shard
boundaries (overlap and containment kernels) and steps that *reach
across* boundaries (the fused fallback).

Two generators feed it: hypothesis documents (adversarial tiny markup
— empty hierarchies, spans touching the text edges, names shared
across hierarchies) and the seeded synthetic manuscripts (realistic
singallice overlap at every shard cut).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.errors import ReproError
from repro.core.runtime.serializer import serialize_item
from repro.corpus.generator import GeneratorConfig, generate_document
from repro.store import DocumentStore

from tests.strategies import multihierarchical_documents

#: (corpus query, oracle query) — the ``collection("c")`` anchor on the
#: left replaces the root anchor on the right.
QUERY_MATRIX = [
    # scatterable paths (per-shard + okey merge)
    ('collection("c")/descendant::w', "/descendant::w"),
    ('collection("c")/descendant::line/child::w',
     "/descendant::line/child::w"),
    ('collection("c")/descendant::w/ancestor::line',
     "/descendant::w/ancestor::line"),
    # extended axes: witnesses can hug the shard cuts
    ('collection("c")/descendant::dmg/xdescendant::w',
     "/descendant::dmg/xdescendant::w"),
    ('collection("c")/descendant::w/overlapping::line',
     "/descendant::w/overlapping::line"),
    ('collection("c")/descendant::w[overlapping::dmg]',
     "/descendant::w[overlapping::dmg]"),
    # aggregates (per-shard fold)
    ('count(collection("c")/descendant::w)', "count(/descendant::w)"),
    ('exists(collection("c")/descendant::res)',
     "exists(/descendant::res)"),
    # FLWOR concat
    ('for $w in collection("c")/descendant::w return string($w)',
     "for $w in /descendant::w return string($w)"),
    # cross-boundary reaches (the fused fallback)
    ('collection("c")/descendant::w/following::w',
     "/descendant::w/following::w"),
    ('collection("c")/descendant::dmg/xfollowing::res',
     "/descendant::dmg/xfollowing::res"),
    ('collection("c")/descendant::res/xpreceding::w',
     "/descendant::res/xpreceding::w"),
]


def assert_sharded_matches_oracle(document, shards: int,
                                  pairs, workers: int = 1) -> None:
    oracle = Engine(document)
    root = Path(tempfile.mkdtemp(prefix="mhxq-prop-corpus-"))
    store = DocumentStore.init(root / "catalog")
    try:
        store.add_corpus("c", document, shards=shards)
        for corpus_text, oracle_text in pairs:
            expected = [serialize_item(item)
                        for item in oracle.query(oracle_text)]
            result = store.cquery(corpus_text, workers=workers)
            assert result.items == expected, (
                corpus_text, result.mode, shards)
    finally:
        store.close()
        shutil.rmtree(root, ignore_errors=True)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large,
                                 HealthCheck.filter_too_much])
@given(document=multihierarchical_documents(max_hierarchies=3,
                                            max_spans=8, max_text=60),
       shards=st.integers(min_value=1, max_value=6),
       picks=st.lists(st.integers(0, len(QUERY_MATRIX) - 1),
                      min_size=1, max_size=4, unique=True))
def test_random_documents_any_boundary(document, shards, picks):
    try:
        pairs = [QUERY_MATRIX[index] for index in picks]
        assert_sharded_matches_oracle(document, shards, pairs)
    except ReproError as error:
        # documents whose markup offers no hierarchies are rejected
        # loudly, not silently mis-sharded
        assert "no hierarchies" in str(error)
        raise AssertionError from error  # pragma: no cover


@pytest.mark.parametrize("n_words,seed,shards", [
    (200, 1, 2), (200, 2, 5), (600, 3, 4), (600, 4, 8),
])
def test_synthetic_manuscripts_full_matrix(n_words, seed, shards):
    document = generate_document(GeneratorConfig(
        n_words=n_words, seed=seed, hyphenation_rate=0.5,
        damage_rate=0.15, restoration_rate=0.15,
        boundary_cross_rate=0.8))
    assert_sharded_matches_oracle(document, shards, QUERY_MATRIX)


def test_pool_execution_matches_oracle():
    document = generate_document(GeneratorConfig(n_words=400, seed=9))
    assert_sharded_matches_oracle(document, 4, QUERY_MATRIX[:6],
                                  workers=2)


def test_degenerate_single_shard():
    document = generate_document(GeneratorConfig(n_words=120, seed=5))
    assert_sharded_matches_oracle(document, 1, QUERY_MATRIX)
