"""The differential update fuzzer (DESIGN.md §9).

Hypothesis generates a random multihierarchical document and a
sequence of 1–30 random update statements, applied two ways:

* **incremental engine** — one :class:`~repro.api.Engine` whose live
  KyGODDAG is patched in place across the whole sequence (partition
  splices, span-index component surgery, in-place renames);
* **rebuild oracle** — a :class:`~repro.core.update.RebuildOracle`
  that keeps only serialized state and re-parses + rebuilds from
  scratch for every statement.

After every applied statement the two must agree byte-for-byte on the
serialization of every hierarchy and the base text, item-for-item on a
probe query set (run against the long-lived incremental goddag vs. a
freshly rebuilt one), and ``check_invariants()`` must pass on the
incremental structure.  Statements that fail (conflicts, proper
overlap, empty targets) must leave both sides untouched — atomicity.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.errors import QueryEvaluationError, UpdateError
from repro.core.update import RebuildOracle

from tests.strategies import (
    build_update_statement,
    multihierarchical_documents,
    update_ops,
)

#: Probe queries spanning counting, serialization, navigation, and the
#: extended (overlap) axes — cheap enough to run after every statement.
PROBE_QUERIES = [
    "count(/descendant::*)",
    "count(//leaf())",
    "/descendant::*/string(.)",
    "for $n in /descendant::* return name($n)",
    "/descendant::*[overlapping::w or xdescendant::w]/string(.)",
]


#: Statements applied across *all* fuzz examples — asserted non-zero
#: afterwards so the suite cannot silently degenerate into testing
#: only the rejection path.
_APPLIED_TOTAL = [0]


def _serialized_state(engine: Engine) -> tuple[str, dict[str, str]]:
    document = engine.document
    return document.text, {name: hierarchy.to_xml()
                           for name, hierarchy
                           in document.hierarchies.items()}


def _assert_states_match(engine: Engine, oracle: RebuildOracle,
                         context: str) -> None:
    text, sources = _serialized_state(engine)
    assert text == oracle.text, f"base text diverged {context}"
    assert sources == oracle.sources, f"serialization diverged {context}"


def _assert_probes_match(engine: Engine, oracle: RebuildOracle,
                         context: str) -> None:
    fresh = oracle.query_strings(PROBE_QUERIES)
    for query, expected in zip(PROBE_QUERIES, fresh):
        actual = engine.query(query).strings()
        assert actual == expected, (
            f"probe {query!r} diverged {context}: incremental "
            f"{actual!r} vs rebuilt {expected!r}")


#: Example budget: 200 on the default profile; the nightly CI profile
#: (``--hypothesis-profile=nightly``, registered in conftest) raises
#: ``settings.default.max_examples`` past that and the fuzzer follows.
FUZZ_EXAMPLES = max(200, settings.default.max_examples)


@settings(max_examples=FUZZ_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large,
                                 HealthCheck.too_slow])
@given(data=st.data())
def test_update_sequences_match_rebuild_oracle(data):
    document = data.draw(multihierarchical_documents(max_text=30),
                         label="document")
    engine = Engine(document)
    engine.goddag.span_index()
    oracle = RebuildOracle(document)
    steps = data.draw(st.integers(min_value=1, max_value=30),
                      label="steps")
    applied = 0
    for step in range(steps):
        op = data.draw(update_ops(), label=f"op-{step}")
        element_count = int(engine.query(
            "count(/descendant::*)").items[0])
        leaf_count = int(engine.query("count(//leaf())").items[0])
        statement = build_update_statement(
            op, element_count, leaf_count,
            engine.document.hierarchy_names)
        if statement is None:
            continue
        context = f"after step {step}: {statement!r}"
        try:
            engine.update(statement, check=True)
        except (UpdateError, QueryEvaluationError):
            # A rejected statement must be fully atomic: nothing may
            # have leaked into the document, the goddag, or the text.
            engine.goddag.check_invariants()
            _assert_states_match(engine, oracle, f"(rejected) {context}")
            continue
        applied += 1
        oracle.apply(statement)
        _assert_states_match(engine, oracle, context)
        _assert_probes_match(engine, oracle, context)
    _APPLIED_TOTAL[0] += applied


def test_fuzzer_actually_applied_updates():
    """Runs after the fuzz test: across all its examples, a healthy
    share of generated statements must have *applied* (not just been
    rejected) — a generator regression that conflicts everything would
    otherwise leave 200 green examples that test nothing."""
    assert _APPLIED_TOTAL[0] >= 200, (
        f"only {_APPLIED_TOTAL[0]} statements applied across the whole "
        f"fuzz run — the statement generator has degenerated")


@settings(max_examples=max(30, FUZZ_EXAMPLES // 20), deadline=None)
@given(document=multihierarchical_documents(max_text=25),
       ops=st.lists(update_ops(), min_size=2, max_size=4))
def test_multi_primitive_statements_are_atomic(document, ops):
    """Comma-combined statements: all primitives apply, or none do."""
    engine = Engine(document)
    oracle = RebuildOracle(document)
    element_count = int(engine.query("count(/descendant::*)").items[0])
    leaf_count = int(engine.query("count(//leaf())").items[0])
    parts = [build_update_statement(op, element_count, leaf_count,
                                    engine.document.hierarchy_names)
             for op in ops]
    parts = [part for part in parts if part is not None]
    if not parts:
        return
    statement = ", ".join(parts)
    try:
        engine.update(statement, check=True)
    except (UpdateError, QueryEvaluationError):
        _assert_states_match(engine, oracle, f"(rejected) {statement!r}")
        return
    oracle.apply(statement)
    _assert_states_match(engine, oracle, repr(statement))
    _assert_probes_match(engine, oracle, repr(statement))
