"""Property tests: algebraic laws of the query language itself."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goddag import KyGoddag
from repro.core.runtime import evaluate_query

from tests.strategies import multihierarchical_documents

SETTINGS = settings(max_examples=40, deadline=None)

AXES = st.sampled_from([
    "descendant", "xdescendant", "xfollowing", "xpreceding",
    "overlapping", "following", "preceding",
])

NAMES = st.sampled_from(["w", "line", "dmg", "res", "seg"])


@SETTINGS
@given(document=multihierarchical_documents(), axis=AXES, name=NAMES)
def test_union_idempotent_and_counts(document, axis, name):
    goddag = KyGoddag.build(document)
    single = evaluate_query(goddag, f"/descendant::*/{axis}::{name}")
    doubled = evaluate_query(
        goddag,
        f"/descendant::*/{axis}::{name} | /descendant::*/{axis}::{name}")
    assert [id(n) for n in doubled] == [id(n) for n in single]


@SETTINGS
@given(document=multihierarchical_documents(), name=NAMES)
def test_intersect_except_partition(document, name):
    """A = (A intersect B) ∪ (A except B) for any node sets."""
    goddag = KyGoddag.build(document)
    left = f"/descendant::{name}"
    right = "/descendant::*[2]"
    combined = evaluate_query(
        goddag,
        f"({left} intersect {right}) | ({left} except {right})")
    base = evaluate_query(goddag, left)
    assert [id(n) for n in combined] == [id(n) for n in base]


@SETTINGS
@given(document=multihierarchical_documents())
def test_predicate_position_slicing(document):
    """Positional predicates agree with Python slicing."""
    goddag = KyGoddag.build(document)
    all_elements = evaluate_query(goddag, "/descendant::*")
    for position in (1, 2, max(1, len(all_elements))):
        picked = evaluate_query(goddag, f"/descendant::*[{position}]")
        if position <= len(all_elements):
            assert picked == [all_elements[position - 1]]
        else:
            assert picked == []


@SETTINGS
@given(document=multihierarchical_documents())
def test_count_distributes_over_sequence(document):
    goddag = KyGoddag.build(document)
    counts = evaluate_query(goddag, '''
        (count((/descendant::*, /descendant::leaf())),
         count(/descendant::*) + count(/descendant::leaf()))
    ''')
    assert counts[0] == counts[1]


@SETTINGS
@given(document=multihierarchical_documents())
def test_flwor_where_equals_predicate(document):
    """`for … where P(x)` ≡ path predicate `[P(.)]`."""
    goddag = KyGoddag.build(document)
    by_where = evaluate_query(goddag, '''
        for $e in /descendant::* where string-length(string($e)) > 1
        return string($e)
    ''')
    by_predicate = evaluate_query(goddag, '''
        for $e in /descendant::*[string-length(string(.)) > 1]
        return string($e)
    ''')
    assert by_where == by_predicate


@SETTINGS
@given(document=multihierarchical_documents())
def test_quantifiers_are_de_morgan_duals(document):
    goddag = KyGoddag.build(document)
    some = evaluate_query(goddag, '''
        some $e in /descendant::* satisfies string-length(string($e)) > 2
    ''')
    not_every_not = evaluate_query(goddag, '''
        not(every $e in /descendant::*
            satisfies not(string-length(string($e)) > 2))
    ''')
    assert some == not_every_not


@SETTINGS
@given(document=multihierarchical_documents())
def test_reverse_reverse_is_identity(document):
    goddag = KyGoddag.build(document)
    once = evaluate_query(goddag, "for $l in /descendant::leaf() "
                                  "return string($l)")
    twice = evaluate_query(goddag, '''
        reverse(reverse(for $l in /descendant::leaf()
                        return string($l)))
    ''')
    assert once == twice


@SETTINGS
@given(document=multihierarchical_documents())
def test_string_of_root_is_base_text(document):
    goddag = KyGoddag.build(document)
    assert evaluate_query(goddag, "string(/)") == [document.text]
