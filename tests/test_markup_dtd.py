"""Unit tests for DTD parsing, content models, and validation."""

from __future__ import annotations

import pytest

from repro.errors import DTDError, ValidationError
from repro.markup import parse, validate
from repro.markup.dtd import parse_dtd


def model_of(source: str, name: str = "a"):
    return parse_dtd(source).elements[name].model


class TestContentModelParsing:
    def test_empty(self):
        assert model_of("<!ELEMENT a EMPTY>").kind == "EMPTY"

    def test_any(self):
        assert model_of("<!ELEMENT a ANY>").kind == "ANY"

    def test_pcdata_only(self):
        model = model_of("<!ELEMENT a (#PCDATA)>")
        assert model.kind == "mixed"
        assert model.mixed_names == frozenset()

    def test_mixed_with_names(self):
        model = model_of("<!ELEMENT a (#PCDATA|b|c)*>")
        assert model.mixed_names == {"b", "c"}

    def test_mixed_requires_star(self):
        with pytest.raises(DTDError, match="trailing"):
            parse_dtd("<!ELEMENT a (#PCDATA|b)>")

    def test_children_model_source_round_trip(self):
        model = model_of("<!ELEMENT a (b,(c|d)*,e?)>")
        assert model.kind == "children"
        assert model.to_source() == "(b,(c|d)*,e?)"

    def test_duplicate_element_rejected(self):
        with pytest.raises(DTDError, match="duplicate"):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>")

    def test_comments_and_pis_skipped(self):
        dtd = parse_dtd("<!--x--><?pi?><!ELEMENT a EMPTY>")
        assert "a" in dtd.elements


class TestContentModelMatching:
    @pytest.mark.parametrize("sequence,ok", [
        (["b"], True),
        (["b", "e"], True),
        (["b", "c", "d", "c"], True),
        (["b", "c", "e"], True),
        ([], False),
        (["c"], False),
        (["b", "e", "e"], False),
        (["b", "x"], False),
    ])
    def test_seq_choice_occurrence(self, sequence, ok):
        model = model_of("<!ELEMENT a (b,(c|d)*,e?)>")
        assert model.matches(sequence) is ok

    @pytest.mark.parametrize("sequence,ok", [
        (["b"], True), (["b", "b"], True), ([], False),
    ])
    def test_plus(self, sequence, ok):
        assert model_of("<!ELEMENT a (b+)>").matches(sequence) is ok

    def test_opt(self):
        model = model_of("<!ELEMENT a (b?)>")
        assert model.matches([]) and model.matches(["b"])
        assert not model.matches(["b", "b"])

    def test_any_matches_everything(self):
        assert model_of("<!ELEMENT a ANY>").matches(["x", "y"])

    def test_empty_matches_nothing_else(self):
        model = model_of("<!ELEMENT a EMPTY>")
        assert model.matches([]) and not model.matches(["b"])

    def test_allows_element_and_text(self):
        mixed = model_of("<!ELEMENT a (#PCDATA|b)*>")
        assert mixed.allows_text() and mixed.allows_element("b")
        assert not mixed.allows_element("c")
        children = model_of("<!ELEMENT a (b)>")
        assert not children.allows_text()

    def test_nested_groups(self):
        model = model_of("<!ELEMENT a ((b,c)|(d,e))+>")
        assert model.matches(["b", "c", "d", "e"])
        assert not model.matches(["b", "e"])


class TestReachability:
    def test_declared_children(self):
        dtd = parse_dtd("<!ELEMENT a (b,c)><!ELEMENT b EMPTY>"
                        "<!ELEMENT c (#PCDATA|d)*><!ELEMENT d EMPTY>")
        assert dtd.declared_children("a") == {"b", "c"}
        assert dtd.declared_children("c") == {"d"}

    def test_reachable_from(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (b?)>"
                        "<!ELEMENT b EMPTY><!ELEMENT orphan EMPTY>")
        assert dtd.reachable_from("r") == {"r", "a", "b"}


class TestAttlist:
    def test_types_and_defaults(self):
        dtd = parse_dtd(
            '<!ELEMENT a EMPTY>'
            '<!ATTLIST a id ID #REQUIRED '
            ' kind (x|y) "x" note CDATA #IMPLIED '
            ' fixed CDATA #FIXED "f">')
        attrs = dtd.elements["a"].attributes
        assert attrs["id"].kind == "ID"
        assert attrs["id"].default_kind == "#REQUIRED"
        assert attrs["kind"].enumeration == ("x", "y")
        assert attrs["kind"].default_value == "x"
        assert attrs["fixed"].default_kind == "#FIXED"

    def test_attlist_before_element(self):
        dtd = parse_dtd('<!ATTLIST a x CDATA #IMPLIED>'
                        '<!ENTITY e "v">')
        assert "x" in dtd.elements["a"].attributes

    def test_unknown_type_rejected(self):
        with pytest.raises(DTDError, match="unknown attribute type"):
            parse_dtd("<!ELEMENT a EMPTY><!ATTLIST a x BOGUS #IMPLIED>")

    def test_entities_recorded(self):
        dtd = parse_dtd('<!ENTITY name "value">')
        assert dtd.general_entities == {"name": "value"}


class TestValidation:
    DTD = ("<!ELEMENT r (line+)>"
           "<!ELEMENT line (#PCDATA|w)*>"
           "<!ELEMENT w (#PCDATA)>"
           '<!ATTLIST line n CDATA #REQUIRED kind (verse|prose) "prose">'
           "<!ATTLIST w id ID #IMPLIED ref IDREF #IMPLIED>")

    def _validate(self, body: str):
        doc = parse(f"<r>{body}</r>")
        validate(doc, parse_dtd(self.DTD))
        return doc

    def test_valid_document(self):
        self._validate('<line n="1">x<w>y</w></line>')

    def test_default_applied(self):
        doc = self._validate('<line n="1"/>')
        assert doc.root.find("line").get("kind") == "prose"

    def test_undeclared_element(self):
        dtd = parse_dtd("<!ELEMENT r ANY>")
        with pytest.raises(ValidationError, match="not declared"):
            validate(parse("<r><bogus/></r>"), dtd)

    def test_model_violation(self):
        with pytest.raises(ValidationError, match="content model"):
            validate(parse("<r><w>x</w></r>"), parse_dtd(self.DTD))

    def test_text_where_forbidden(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a EMPTY>")
        with pytest.raises(ValidationError, match="character data"):
            validate(parse("<r>oops<a/></r>"), dtd)

    def test_whitespace_tolerated_in_element_content(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a EMPTY>")
        validate(parse("<r>  <a/>  </r>"), dtd)

    def test_missing_required_attribute(self):
        with pytest.raises(ValidationError, match="required"):
            self._validate("<line>x</line>")

    def test_undeclared_attribute(self):
        with pytest.raises(ValidationError, match="not declared"):
            self._validate('<line n="1" bogus="y"/>')

    def test_enumeration_enforced(self):
        with pytest.raises(ValidationError, match="must be one of"):
            self._validate('<line n="1" kind="sonnet"/>')

    def test_duplicate_id(self):
        with pytest.raises(ValidationError, match="duplicate ID"):
            self._validate('<line n="1"><w id="w1"/><w id="w1"/></line>')

    def test_dangling_idref(self):
        with pytest.raises(ValidationError, match="IDREF"):
            self._validate('<line n="1"><w ref="nowhere"/></line>')

    def test_idref_resolves(self):
        self._validate('<line n="1"><w id="w1"/><w ref="w1"/></line>')

    def test_doctype_root_mismatch(self):
        doc = parse("<!DOCTYPE other><r/>")
        with pytest.raises(ValidationError, match="DOCTYPE"):
            validate(doc, parse_dtd("<!ELEMENT r EMPTY>"))

    def test_no_dtd_available(self):
        with pytest.raises(ValidationError, match="no DTD"):
            validate(parse("<r/>"))

    def test_validate_uses_document_dtd(self):
        doc = parse("<!DOCTYPE r [<!ELEMENT r EMPTY>]><r/>")
        validate(doc)
