"""Tests for the built-in function library."""

from __future__ import annotations

import pytest

from repro.errors import FunctionError, QueryEvaluationError
from repro.core.runtime import evaluate_query, serialize_items


def run(goddag, query):
    return evaluate_query(goddag, query)


def one(goddag, query):
    result = run(goddag, query)
    assert len(result) == 1, result
    return result[0]


class TestStringFunctions:
    def test_string_of_node(self, goddag):
        assert one(goddag, "string(/descendant::line[1])") == \
            "gesceaftum unawendendne sin"

    def test_string_of_number(self, goddag):
        assert one(goddag, "string(1.0)") == "1"
        assert one(goddag, "string(2.5)") == "2.5"

    def test_string_of_empty(self, goddag):
        assert one(goddag, "string(())") == ""

    def test_concat(self, goddag):
        assert one(goddag, 'concat("a", "b", "c")') == "abc"

    def test_string_join(self, goddag):
        assert one(goddag,
                   'string-join(("a", "b"), "-")') == "a-b"
        assert one(goddag, 'string-join(("a", "b"))') == "ab"

    def test_contains_starts_ends(self, goddag):
        assert one(goddag, 'contains("singallice", "gall")') is True
        assert one(goddag, 'starts-with("singallice", "sin")') is True
        assert one(goddag, 'ends-with("singallice", "lice")') is True
        assert one(goddag, 'contains("x", "y")') is False

    def test_substring(self, goddag):
        assert one(goddag, 'substring("12345", 2)') == "2345"
        assert one(goddag, 'substring("12345", 2, 3)') == "234"
        assert one(goddag, 'substring("12345", 0)') == "12345"
        assert one(goddag, 'substring("12345", 1.7)') == "2345"

    def test_substring_before_after(self, goddag):
        assert one(goddag, 'substring-before("a-b", "-")') == "a"
        assert one(goddag, 'substring-after("a-b", "-")') == "b"
        assert one(goddag, 'substring-before("ab", "-")') == ""

    def test_string_length(self, goddag):
        assert one(goddag, 'string-length("abc")') == 3

    def test_normalize_space(self, goddag):
        assert one(goddag, 'normalize-space("  a   b ")') == "a b"

    def test_translate(self, goddag):
        assert one(goddag, 'translate("abc", "abc", "ABC")') == "ABC"
        assert one(goddag, 'translate("abc", "b", "")') == "ac"

    def test_case_functions(self, goddag):
        assert one(goddag, 'upper-case("aϸ")') == "AϷ"
        assert one(goddag, 'lower-case("AB")') == "ab"

    def test_matches(self, goddag):
        assert one(goddag, 'matches("unawendendne", ".*unawe.*")') is True
        assert one(goddag, 'matches("abc", "^b")') is False
        assert one(goddag, 'matches("ABC", "abc", "i")') is True

    def test_matches_bad_pattern(self, goddag):
        with pytest.raises(FunctionError, match="invalid regular"):
            run(goddag, 'matches("x", "(")')

    def test_matches_bad_flag(self, goddag):
        with pytest.raises(FunctionError, match="unsupported regex flag"):
            run(goddag, 'matches("x", "x", "q")')

    def test_replace(self, goddag):
        assert one(goddag, 'replace("banana", "a", "o")') == "bonono"
        assert one(goddag, 'replace("a1b2", "[0-9]", "")') == "ab"
        assert one(goddag,
                   'replace("abc", "(b)", "[$1]")') == "a[b]c"

    def test_tokenize(self, goddag):
        assert run(goddag, 'tokenize("a b  c", "\\s+")') == ["a", "b", "c"]
        assert run(goddag, 'tokenize("", "x")') == []


class TestNumericFunctions:
    def test_number(self, goddag):
        assert one(goddag, 'number("3.5")') == 3.5
        import math

        assert math.isnan(one(goddag, 'number("abc")'))

    def test_sum_avg(self, goddag):
        assert one(goddag, "sum((1, 2, 3))") == 6
        assert one(goddag, "sum(())") == 0
        assert one(goddag, "avg((1, 2, 3))") == 2
        assert run(goddag, "avg(())") == []

    def test_min_max(self, goddag):
        assert one(goddag, "min((3, 1, 2))") == 1
        assert one(goddag, "max((3, 1, 2))") == 3
        assert one(goddag, 'min(("b", "a"))') == "a"

    def test_rounding(self, goddag):
        assert one(goddag, "floor(1.7)") == 1
        assert one(goddag, "ceiling(1.2)") == 2
        assert one(goddag, "round(2.5)") == 3  # XPath rounds .5 up
        assert one(goddag, "round(-2.5)") == -2
        assert one(goddag, "abs(-4)") == 4


class TestBooleanFunctions:
    def test_boolean_not(self, goddag):
        assert one(goddag, 'boolean("x")') is True
        assert one(goddag, 'boolean("")') is False
        assert one(goddag, "not(())") is True
        assert one(goddag, "true()") is True
        assert one(goddag, "false()") is False

    def test_exists_empty(self, goddag):
        assert one(goddag, "exists(/descendant::w)") is True
        assert one(goddag, "empty(/descendant::nothing)") is True


class TestSequenceFunctions:
    def test_count(self, goddag):
        assert one(goddag, "count((1, 2, 3))") == 3

    def test_distinct_values(self, goddag):
        assert run(goddag, 'distinct-values((1, 2, 1, "a", "a"))') == \
            [1, 2, "a"]

    def test_reverse(self, goddag):
        assert run(goddag, "reverse((1, 2, 3))") == [3, 2, 1]

    def test_subsequence(self, goddag):
        assert run(goddag, "subsequence((1,2,3,4), 2)") == [2, 3, 4]
        assert run(goddag, "subsequence((1,2,3,4), 2, 2)") == [2, 3]

    def test_index_of(self, goddag):
        assert run(goddag, 'index-of(("a","b","a"), "a")') == [1, 3]

    def test_insert_remove(self, goddag):
        assert run(goddag, "insert-before((1,2), 2, (9))") == [1, 9, 2]
        assert run(goddag, "remove((1,2,3), 2)") == [1, 3]

    def test_head_tail(self, goddag):
        assert run(goddag, "head((1,2,3))") == [1]
        assert run(goddag, "tail((1,2,3))") == [2, 3]

    def test_data_atomizes(self, goddag):
        assert run(goddag, "data(/descendant::w[1])") == ["gesceaftum"]

    def test_cardinality_checks(self, goddag):
        assert run(goddag, "zero-or-one(())") == []
        assert run(goddag, "exactly-one(1)") == [1]
        with pytest.raises(FunctionError):
            run(goddag, "one-or-more(())")
        with pytest.raises(FunctionError):
            run(goddag, "exactly-one((1, 2))")


class TestNodeFunctions:
    def test_name_and_local_name(self, goddag):
        assert one(goddag, "name(/descendant::w[1])") == "w"
        assert one(goddag, "local-name(/descendant::w[1])") == "w"
        assert one(goddag, "name(/)") == "r"
        assert one(goddag, "name(())") == ""

    def test_root_function(self, goddag):
        assert run(goddag, "root()") == [goddag.root]

    def test_position_last_in_predicate(self, goddag):
        result = run(goddag,
                     "/descendant::w[position() = last()]")
        assert [w.string_value() for w in result] == ["ϸa"]

    def test_hierarchy_extension(self, goddag):
        assert one(goddag, "hierarchy(/descendant::dmg[1])") == "damage"
        assert one(goddag, "hierarchy(/)") == ""
        assert one(goddag, "hierarchy(/descendant::leaf()[1])") == ""

    def test_hierarchies_extension(self, goddag):
        assert run(goddag, "hierarchies()") == [
            "physical", "structural", "restoration", "damage"]

    def test_leaves_extension(self, goddag):
        result = run(goddag, 'leaves(/descendant::w[2])')
        assert [l.text for l in result] == ["una", "w", "endendne"]

    def test_span_extension(self, goddag):
        assert run(goddag, "span(/descendant::dmg[1])") == [14, 15]

    def test_leaves_requires_node(self, goddag):
        with pytest.raises(FunctionError):
            run(goddag, 'leaves("x")')

    def test_unknown_function(self, goddag):
        with pytest.raises(QueryEvaluationError, match="unknown function"):
            run(goddag, "mystery(1)")

    def test_arity_errors(self, goddag):
        with pytest.raises(FunctionError, match="expects"):
            run(goddag, "count()")
        with pytest.raises(FunctionError, match="expects"):
            run(goddag, 'concat("a")')


class TestFunctionResultsSerialize:
    def test_boolean_serialization(self, goddag):
        assert serialize_items(run(goddag, "true()")) == "true"

    def test_number_serialization(self, goddag):
        assert serialize_items(run(goddag, "1 div 4")) == "0.25"
