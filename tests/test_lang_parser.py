"""Tests for the query parser: paths, FLWOR, constructors, errors."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError
from repro.core.lang import ast, parse_query, parse_xpath


class TestPaths:
    def test_absolute_path(self):
        expr = parse_query("/descendant::line")
        assert isinstance(expr, ast.PathExpr)
        assert expr.anchor == "root"
        assert expr.steps[0].axis == "descendant"
        assert expr.steps[0].test == ast.NameTest("line")

    def test_root_only(self):
        expr = parse_query("/")
        assert isinstance(expr, ast.PathExpr)
        assert expr.anchor == "root" and expr.steps == ()

    def test_double_slash_abbreviation(self):
        # The "descendant" anchor encodes the leading
        # /descendant-or-self::node()/ step; it is applied at evaluation.
        expr = parse_query("//w")
        assert expr.anchor == "descendant"
        assert expr.steps[0].axis == "child"
        assert expr.steps[0].test == ast.NameTest("w")

    def test_relative_multi_step(self):
        expr = parse_query("a/b//c")
        assert isinstance(expr, ast.PathExpr)
        axes = [step.axis for step in expr.steps]
        assert axes == ["child", "child", "descendant-or-self", "child"]

    def test_attribute_abbreviation(self):
        expr = parse_query("@type")
        assert expr.steps[0].axis == "attribute"

    def test_parent_abbreviation(self):
        expr = parse_query("../x")
        assert expr.steps[0].axis == "parent"
        assert expr.steps[0].test == ast.KindTest("node")

    def test_extended_axes_parse(self):
        for axis in ("xancestor", "xdescendant", "xfollowing",
                     "xpreceding", "preceding-overlapping",
                     "following-overlapping", "overlapping"):
            expr = parse_query(f"{axis}::w")
            assert expr.steps[0].axis == axis

    def test_unknown_axis_rejected(self):
        with pytest.raises(QuerySyntaxError, match="unknown axis"):
            parse_query("sideways::w")

    def test_predicates(self):
        expr = parse_query('w[string(.) = "x"][2]')
        assert len(expr.steps[0].predicates) == 2

    def test_primary_then_steps(self):
        expr = parse_query("$res/child::node()")
        assert isinstance(expr.primary, ast.VarRef)
        assert expr.steps[0].axis == "child"

    def test_variable_with_predicate(self):
        expr = parse_query("$leaf[ancestor::w]")
        assert isinstance(expr, ast.FilterExpr)


class TestNodeTests:
    def test_kind_tests(self):
        for kind in ("text", "node", "comment", "leaf"):
            expr = parse_query(f"child::{kind}()")
            assert expr.steps[0].test == ast.KindTest(kind)

    def test_extended_hierarchy_tests(self):
        expr = parse_query("child::text('structural')")
        assert expr.steps[0].test == ast.KindTest(
            "text", ("structural",))
        expr = parse_query("child::node('a, b')")
        assert expr.steps[0].test == ast.KindTest("node", ("a", "b"))

    def test_extended_wildcard(self):
        expr = parse_query("child::*('damage')")
        assert expr.steps[0].test == ast.WildcardTest(("damage",))

    def test_plain_wildcard(self):
        expr = parse_query("child::*")
        assert expr.steps[0].test == ast.WildcardTest()

    def test_pi_with_target(self):
        expr = parse_query("child::processing-instruction('tgt')")
        assert expr.steps[0].test.target == "tgt"

    def test_leaf_with_argument_rejected(self):
        with pytest.raises(QuerySyntaxError, match="hierarchy argument"):
            parse_query("child::leaf('x')")

    def test_empty_hierarchy_list_rejected(self):
        with pytest.raises(QuerySyntaxError, match="empty hierarchy"):
            parse_query("child::text('')")


class TestOperators:
    def test_precedence_or_and(self):
        expr = parse_query("a or b and c")
        assert isinstance(expr, ast.OrExpr)
        assert isinstance(expr.operands[1], ast.AndExpr)

    def test_comparison_styles(self):
        assert parse_query("1 = 2").style == "general"
        assert parse_query("1 eq 2").style == "value"
        assert parse_query("$a is $b").style == "node"
        assert parse_query("$a << $b").op == "<<"

    def test_arithmetic_precedence(self):
        expr = parse_query("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_range(self):
        expr = parse_query("1 to 5")
        assert isinstance(expr, ast.RangeExpr)

    def test_union_and_intersect(self):
        expr = parse_query("a | b union c")
        assert isinstance(expr, ast.UnionExpr)
        assert len(expr.operands) == 3
        expr = parse_query("a intersect b")
        assert isinstance(expr, ast.IntersectExceptExpr)

    def test_unary_minus(self):
        expr = parse_query("-1")
        assert isinstance(expr, ast.UnaryExpr)

    def test_sequence_comma(self):
        expr = parse_query("1, 2, 3")
        assert isinstance(expr, ast.SequenceExpr)
        assert len(expr.items) == 3

    def test_empty_parens(self):
        expr = parse_query("()")
        assert expr == ast.SequenceExpr((), offset=0)

    def test_div_mod_are_contextual(self):
        # 'div' as an element name in a path vs as an operator.
        expr = parse_query("div")
        assert isinstance(expr, ast.PathExpr)
        expr = parse_query("4 div 2")
        assert isinstance(expr, ast.ArithmeticExpr)


class TestFLWOR:
    def test_for_let_where_return(self):
        expr = parse_query(
            'for $x in //w let $s := string($x) '
            'where contains($s, "a") return $s')
        assert isinstance(expr, ast.FLWORExpr)
        kinds = [type(c).__name__ for c in expr.clauses]
        assert kinds == ["ForClause", "LetClause", "WhereClause"]

    def test_for_with_at(self):
        expr = parse_query("for $x at $i in (1,2) return $i")
        assert expr.clauses[0].position_variable == "i"

    def test_multiple_bindings(self):
        expr = parse_query("for $a in 1, $b in 2 return $a + $b")
        assert len(expr.clauses) == 2

    def test_order_by(self):
        expr = parse_query(
            "for $x in //w order by string($x) descending return $x")
        order = expr.clauses[-1]
        assert isinstance(order, ast.OrderByClause)
        assert order.specs[0].descending

    def test_order_by_empty_greatest(self):
        expr = parse_query(
            "for $x in //w order by $x empty greatest return $x")
        assert not expr.clauses[-1].specs[0].empty_least

    def test_missing_return_rejected(self):
        with pytest.raises(QuerySyntaxError, match="return"):
            parse_query("for $x in //w")

    def test_if_then_else(self):
        expr = parse_query("if (1) then 2 else 3")
        assert isinstance(expr, ast.IfExpr)

    def test_if_requires_else(self):
        with pytest.raises(QuerySyntaxError, match="else"):
            parse_query("if (1) then 2")

    def test_quantified(self):
        expr = parse_query("some $x in (1,2) satisfies $x = 2")
        assert isinstance(expr, ast.QuantifiedExpr)
        assert expr.quantifier == "some"
        expr = parse_query("every $x in (1,2) satisfies $x > 0")
        assert expr.quantifier == "every"

    def test_keyword_names_usable_as_steps(self):
        # 'for' not followed by '$' is an ordinary name test.
        expr = parse_query("for")
        assert isinstance(expr, ast.PathExpr)


class TestConstructors:
    def test_empty_element(self):
        expr = parse_query("<br/>")
        assert expr == ast.ElementConstructor("br", (), (), offset=0)

    def test_text_content(self):
        expr = parse_query("<b>bold</b>")
        assert expr.content == ("bold",)

    def test_enclosed_expression(self):
        expr = parse_query("<b>{$leaf}</b>")
        assert isinstance(expr.content[0], ast.VarRef)

    def test_nested_constructors(self):
        expr = parse_query("<i><b>{$x}</b></i>")
        inner = expr.content[0]
        assert isinstance(inner, ast.ElementConstructor)
        assert inner.name == "b"

    def test_mixed_content(self):
        expr = parse_query("<p>before {$x} after</p>")
        assert expr.content[0] == "before "
        assert isinstance(expr.content[1], ast.VarRef)
        assert expr.content[2] == " after"

    def test_boundary_whitespace_stripped(self):
        expr = parse_query("<p>  <b/>  </p>")
        assert all(isinstance(c, ast.ElementConstructor)
                   for c in expr.content)

    def test_attributes_literal(self):
        expr = parse_query('<a href="x">t</a>')
        assert expr.attributes[0][0] == "href"
        assert expr.attributes[0][1].parts == ("x",)

    def test_attribute_value_template(self):
        expr = parse_query('<a n="{position()}"/>')
        assert isinstance(expr.attributes[0][1].parts[0], ast.FunctionCall)

    def test_brace_escapes(self):
        expr = parse_query("<a>{{literal}}</a>")
        assert expr.content == ("{literal}",)

    def test_entity_in_content(self):
        expr = parse_query("<a>&lt;&#65;</a>")
        assert expr.content == ("<A",)

    def test_cdata_in_content(self):
        expr = parse_query("<a><![CDATA[{raw}]]></a>")
        assert expr.content == ("{raw}",)

    def test_mismatched_end_tag_rejected(self):
        with pytest.raises(QuerySyntaxError, match="does not match"):
            parse_query("<a></b>")

    def test_less_than_is_comparison_after_operand(self):
        expr = parse_query("1 < 2")
        assert isinstance(expr, ast.ComparisonExpr)

    def test_constructor_in_sequence(self):
        expr = parse_query("<b>{$x}</b>, <br/>")
        assert isinstance(expr, ast.SequenceExpr)
        assert len(expr.items) == 2


class TestFunctionCalls:
    def test_simple_call(self):
        expr = parse_query("string($l)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "string"

    def test_fn_prefix_stripped(self):
        assert parse_query("fn:string(1)").name == "string"

    def test_hyphenated_function(self):
        expr = parse_query('analyze-string($w, ".*unawe.*")')
        assert expr.name == "analyze-string"
        assert len(expr.args) == 2

    def test_no_args(self):
        assert parse_query("position()").args == ()

    def test_kind_test_names_not_functions(self):
        expr = parse_query("text()")
        assert isinstance(expr, ast.PathExpr)
        assert expr.steps[0].test == ast.KindTest("text")


class TestParseXPath:
    def test_accepts_paths(self):
        parse_xpath("/descendant::line[overlapping::w]")

    def test_rejects_flwor(self):
        with pytest.raises(QuerySyntaxError, match="FLWORExpr"):
            parse_xpath("for $x in //w return $x")

    def test_rejects_constructors(self):
        with pytest.raises(QuerySyntaxError, match="ElementConstructor"):
            parse_xpath("<b/>")

    def test_rejects_quantified(self):
        with pytest.raises(QuerySyntaxError, match="QuantifiedExpr"):
            parse_xpath("some $x in //w satisfies $x")


class TestSyntaxErrors:
    @pytest.mark.parametrize("source", [
        "",
        "for $x in",
        "let $x := ",
        "1 +",
        "(1, 2",
        "child::",
        "$",
        "a[",
        "if (1) then",
        "<a>{1</a>",
    ])
    def test_rejected(self, source):
        with pytest.raises(QuerySyntaxError):
            parse_query(source)

    def test_trailing_content_rejected(self):
        with pytest.raises(QuerySyntaxError, match="trailing"):
            parse_query("1 1")
