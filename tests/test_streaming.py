"""Differential tests for the streaming (DOM-free) ingest path.

The contract of ``repro.markup.streaming`` (DESIGN.md §15) is strict:
on any input, the streamed ``.mhxb`` is **byte-identical** to the DOM
pipeline's ``save_engine`` output, and on any *bad* input the raised
exception is the DOM path's exact type and message, with the builder
left untouched.  Every test here therefore runs both paths and
compares — bytes on success, ``(type, str)`` on failure.
"""

from __future__ import annotations

import json
import pathlib
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.cmh import Hierarchy, MultihierarchicalDocument
from repro.cmh.spans import Span, SpanSet
from repro.corpus.boethius import BASE_TEXT, ENCODINGS
from repro.corpus.generator import GeneratorConfig, generate_document
from repro.errors import (AlignmentError, CMHError, MarkupError, ReproError,
                          StoreError)
from repro.markup.parser import parse
from repro.markup.streaming import (StreamingBuilder, _fast_events,
                                    _FastPathMiss, stream_save)
from repro.store import DocumentStore
from repro.store.mhxb import save_engine
from repro.store.sharding import shard_document

from tests.strategies import multihierarchical_documents


def dom_bytes(tmp_path, text: str, sources: dict[str, str]) -> bytes:
    """The DOM pipeline's ``.mhxb`` bytes for the same input."""
    path = tmp_path / "dom.mhxb"
    document = MultihierarchicalDocument.from_xml(text, sources)
    save_engine(Engine(document), path)
    return path.read_bytes()


def stream_bytes(tmp_path, text: str, sources: dict[str, str],
                 layers: dict | None = None) -> bytes:
    path = tmp_path / "stream.mhxb"
    stream_save(text, sources, path, layers=layers)
    return path.read_bytes()


def assert_identical(tmp_path, text: str, sources: dict[str, str]) -> None:
    assert stream_bytes(tmp_path, text, sources) == \
        dom_bytes(tmp_path, text, sources)


class TestByteIdentity:
    def test_boethius_raw_encodings(self, tmp_path):
        assert_identical(tmp_path, BASE_TEXT, dict(ENCODINGS))

    @pytest.mark.parametrize("n_words,seed", [(400, 0), (400, 3), (1600, 1)])
    def test_generated_corpora(self, tmp_path, n_words, seed):
        document = generate_document(GeneratorConfig(n_words=n_words,
                                                     seed=seed))
        sources = {name: document[name].to_xml()
                   for name in document.hierarchy_names}
        assert_identical(tmp_path, document.text, sources)

    def test_loaded_engine_matches_dom_load(self, tmp_path):
        path = tmp_path / "s.mhxb"
        stream_save(BASE_TEXT, dict(ENCODINGS), path)
        engine = Engine.from_mhxb(path)
        reference = Engine(MultihierarchicalDocument.from_xml(
            BASE_TEXT, dict(ENCODINGS)))
        assert engine.query("count(/descendant::w)").items == \
            reference.query("count(/descendant::w)").items
        assert engine.goddag.hierarchy_names == \
            reference.goddag.hierarchy_names

    def test_comments_and_pis_inline(self, tmp_path):
        text = "hello world"
        sources = {"a": "<d>hello <!--c1--><?t d?>world</d>",
                   "b": "<d><x>hello</x> <x>world</x><!----></d>"}
        assert_identical(tmp_path, text, sources)

    def test_prolog_and_epilog(self, tmp_path):
        text = "ab"
        source = ("<?xml version='1.0'?><!--before--><?pi data?>"
                  "<d>ab</d><!--after--><?post?>")
        assert_identical(tmp_path, text, {"h": source})

    def test_root_and_nested_attributes(self, tmp_path):
        text = "xy"
        source = ('<d a="1" b="&lt;2&gt;"><s c="3&#65;">x</s>'
                  '<s d="  sp  ">y</s></d>')
        assert_identical(tmp_path, text, {"h": source})

    def test_empty_and_self_closing_elements(self, tmp_path):
        text = "xy"
        source = "<d><e/><e></e>x<e  />y<e/></d>"
        assert_identical(tmp_path, text, {"h": source})

    def test_entities_fast_path(self, tmp_path):
        text = "a<b>&'\"éA"
        source = "<d>a&lt;b&gt;&amp;&apos;&quot;&#xe9;&#65;</d>"
        list(_fast_events(source))  # stays on the fast path
        assert_identical(tmp_path, text, {"h": source})

    def test_doctype_falls_back(self, tmp_path):
        text = "xx-yy"
        source = ('<!DOCTYPE d [<!ENTITY e "yy">]>'
                  "<d>xx-&e;</d>")
        with pytest.raises(_FastPathMiss):
            list(_fast_events(source))
        assert_identical(tmp_path, text, {"h": source})

    def test_cdata_falls_back(self, tmp_path):
        text = "a<b>c"
        source = "<d>a<![CDATA[<b>]]>c<![CDATA[]]></d>"
        with pytest.raises(_FastPathMiss):
            list(_fast_events(source))
        assert_identical(tmp_path, text, {"h": source})

    def test_carriage_returns_fall_back(self, tmp_path):
        text = "a\nb\nc"
        source = "<d>a\r\nb\rc</d>"
        with pytest.raises(_FastPathMiss):
            list(_fast_events(source))
        assert_identical(tmp_path, text, {"h": source})

    def test_non_ascii_names_fall_back(self, tmp_path):
        text = "ab"
        source = "<d><émph>ab</émph></d>"
        with pytest.raises(_FastPathMiss):
            list(_fast_events(source))
        assert_identical(tmp_path, text, {"h": source})

    def test_multihierarchy_interning_order(self, tmp_path):
        # shared names across hierarchies must intern in first-seen
        # order globally, not per hierarchy
        text = "abcd"
        sources = {"one": "<d><w>ab</w><x>cd</x></d>",
                   "two": "<d><x>abc</x><w>d</w></d>"}
        assert_identical(tmp_path, text, sources)

    def test_bom_and_declaration(self, tmp_path):
        text = "ab"
        source = '﻿<?xml version="1.0" encoding="utf-8"?><d>ab</d>'
        assert_identical(tmp_path, text, {"h": source})

    def test_whitespace_in_tags(self, tmp_path):
        text = "ab"
        source = '<d ><e\na="1"\t>ab</e\n></d >'
        assert_identical(tmp_path, text, {"h": source})

    @settings(deadline=None, max_examples=40)
    @given(data=st.data())
    def test_hypothesis_documents(self, data):
        document = data.draw(multihierarchical_documents())
        sources = {name: document[name].to_xml()
                   for name in document.hierarchy_names}
        with tempfile.TemporaryDirectory() as tmp:
            dom_path = pathlib.Path(tmp) / "hd.mhxb"
            st_path = pathlib.Path(tmp) / "hs.mhxb"
            save_engine(Engine(document.clone()), dom_path)
            stream_save(document.text, sources, st_path)
            assert dom_path.read_bytes() == st_path.read_bytes()


class TestStandoffLayers:
    PROSE = ("It was a bright cold day in April, and the clocks "
             "were striking thirteen.")

    def tokens(self):
        spans, position = [], 0
        for index, word in enumerate(self.PROSE.split(" ")):
            spans.append((position, position + len(word), "tok",
                          {"i": str(index)}))
            position += len(word) + 1
        return spans

    def sentences(self):
        return [(0, len(self.PROSE), "s")]

    def base_source(self):
        return f"<doc><p>{self.PROSE}</p></doc>"

    def dom_with_layers(self, layers: dict) -> MultihierarchicalDocument:
        document = MultihierarchicalDocument.from_xml(
            self.PROSE, {"base": self.base_source()})
        for name, spans in layers.items():
            span_set = SpanSet(self.PROSE, [
                Span(s, e, n, tuple(a.items()) if len(row) > 3 else ())
                for row in spans
                for (s, e, n, *rest) in [row]
                for a in [rest[0] if rest else {}]])
            document.add_hierarchy(Hierarchy(
                name, span_set.to_document(document.root_name)))
        return document

    def test_token_sentence_layers_byte_identical(self, tmp_path):
        layers = {"tokens": self.tokens(), "sentences": self.sentences()}
        dom_path = tmp_path / "ld.mhxb"
        st_path = tmp_path / "ls.mhxb"
        save_engine(Engine(self.dom_with_layers(layers)), dom_path)
        stream_save(self.PROSE, {"base": self.base_source()}, st_path,
                    layers=layers)
        assert dom_path.read_bytes() == st_path.read_bytes()

    def test_nested_and_zero_length_spans(self, tmp_path):
        layers = {"mix": [(0, 20, "outer"), (2, 9, "inner"),
                          (5, 5, "pt"), (20, 20, "pt")]}
        dom_path = tmp_path / "zd.mhxb"
        st_path = tmp_path / "zs.mhxb"
        save_engine(Engine(self.dom_with_layers(layers)), dom_path)
        stream_save(self.PROSE, {"base": self.base_source()}, st_path,
                    layers=layers)
        assert dom_path.read_bytes() == st_path.read_bytes()

    def test_layer_queries(self, tmp_path):
        path = tmp_path / "q.mhxb"
        stream_save(self.PROSE, {"base": self.base_source()}, path,
                    layers={"tokens": self.tokens()})
        engine = Engine.from_mhxb(path)
        count = len(self.PROSE.split(" "))
        assert engine.query("count(//tok)").items == [count]

    def test_layer_before_any_hierarchy(self):
        builder = StreamingBuilder(self.PROSE)
        with pytest.raises(CMHError, match="document has no hierarchies"):
            builder.add_layer("tokens", self.tokens())

    def test_overlapping_spans_match_spanset_error(self):
        spans = [Span(0, 10, "a"), Span(5, 15, "b")]
        try:
            SpanSet(self.PROSE, spans)
        except CMHError as error:
            expected = (type(error), str(error))
        builder = StreamingBuilder(self.PROSE)
        builder.add_hierarchy("base", self.base_source())
        with pytest.raises(expected[0]) as caught:
            builder.add_layer("bad", spans)
        assert str(caught.value) == expected[1]
        assert builder.hierarchy_names == ["base"]

    def test_out_of_bounds_span(self):
        builder = StreamingBuilder(self.PROSE)
        builder.add_hierarchy("base", self.base_source())
        with pytest.raises(CMHError, match="exceeds the text"):
            builder.add_layer("bad", [(0, len(self.PROSE) + 1, "x")])

    def test_negative_extent_span(self):
        builder = StreamingBuilder(self.PROSE)
        builder.add_hierarchy("base", self.base_source())
        with pytest.raises(CMHError, match="negative extent"):
            builder.add_layer("bad", [(5, 3, "x")])

    def test_failed_layer_leaves_builder_intact(self, tmp_path):
        builder = StreamingBuilder(self.PROSE)
        builder.add_hierarchy("base", self.base_source())
        clean = tmp_path / "clean.mhxb"
        builder.save(clean)
        with pytest.raises(CMHError):
            builder.add_layer("bad", [(0, 10, "newname"), (5, 15, "b")])
        after = tmp_path / "after.mhxb"
        builder.save(after)
        assert clean.read_bytes() == after.read_bytes()


#: malformed XML taxonomy — the canonical parser is the oracle for the
#: exact exception type and message in every one of these
MALFORMED = [
    "",
    "   ",
    "<d>ab",
    "<d><e>ab</d>",
    "<d>ab</d></d>",
    "<d>ab</d><d>cd</d>",
    "<d>ab</d>trailing",
    "leading<d>ab</d>",
    "<d>a & b</d>",
    "<d>a&unknown;b</d>",
    "<d>a&#xZZ;b</d>",
    "<d>a&#2;b</d>",
    "<d>a]]>b</d>",
    "<d a=1>x</d>",
    '<d a="1" a="2">x</d>',
    '<d a="<">x</d>',
    "<d a ='1'b='2'>x</d>",
    "<d><!--a--b--></d>",
    "<d><!--unterminated</d>",
    "<d><![CDATA[open</d>",
    "<d><?xml bad?></d>",
    "<d><?unterminated</d>",
    "<d><!BOGUS x></d>",
    "<d/>more<d/>",
    "<?xml version='1.0'",
    "<d><e a='1'/ ></d>",
    "< d>x</d>",
    "</d>",
]


class TestMalformedTaxonomy:
    @pytest.mark.parametrize("source", MALFORMED)
    def test_error_matches_dom_oracle(self, source):
        with pytest.raises(MarkupError) as oracle:
            parse(source)
        builder = StreamingBuilder("ab")
        with pytest.raises(MarkupError) as caught:
            builder.add_hierarchy("h", source)
        assert type(caught.value) is type(oracle.value)
        assert str(caught.value) == str(oracle.value)
        assert builder.hierarchy_names == []

    def test_alignment_divergence_matches_dom(self):
        text = "abcdef"
        source = "<d>abcXef</d>"
        with pytest.raises(AlignmentError) as oracle:
            MultihierarchicalDocument.from_xml(text, {"h": source})
        builder = StreamingBuilder(text)
        with pytest.raises(AlignmentError) as caught:
            builder.add_hierarchy("h", source)
        assert str(caught.value) == str(oracle.value)
        assert caught.value.offset == oracle.value.offset
        assert caught.value.hierarchy == oracle.value.hierarchy
        assert builder.hierarchy_names == []

    def test_alignment_coverage_matches_dom(self):
        text = "abcdef"
        source = "<d>abc</d>"
        with pytest.raises(AlignmentError) as oracle:
            MultihierarchicalDocument.from_xml(text, {"h": source})
        builder = StreamingBuilder(text)
        with pytest.raises(AlignmentError) as caught:
            builder.add_hierarchy("h", source)
        assert str(caught.value) == str(oracle.value)

    def test_root_mismatch_matches_dom(self):
        text = "ab"
        sources = {"one": "<d>ab</d>", "two": "<other>ab</other>"}
        with pytest.raises(CMHError) as oracle:
            MultihierarchicalDocument.from_xml(text, sources)
        builder = StreamingBuilder(text)
        builder.add_hierarchy("one", sources["one"])
        with pytest.raises(CMHError) as caught:
            builder.add_hierarchy("two", sources["two"])
        assert str(caught.value) == str(oracle.value)
        assert builder.hierarchy_names == ["one"]

    def test_duplicate_hierarchy_name(self):
        builder = StreamingBuilder("ab")
        builder.add_hierarchy("h", "<d>ab</d>")
        with pytest.raises(CMHError,
                           match="duplicate hierarchy name 'h'"):
            builder.add_hierarchy("h", "<d>ab</d>")

    def test_markup_error_outranks_alignment(self):
        # the DOM path parses fully before aligning, so a divergence
        # followed by a well-formedness error reports the latter
        text = "abcdef"
        source = "<d>XXX<!--bad--comment--></d>"
        with pytest.raises(MarkupError) as oracle:
            MultihierarchicalDocument.from_xml(text, {"h": source})
        builder = StreamingBuilder(text)
        with pytest.raises(MarkupError) as caught:
            builder.add_hierarchy("h", source)
        assert str(caught.value) == str(oracle.value)
        assert builder.hierarchy_names == []

    def test_failed_hierarchy_leaves_builder_intact(self, tmp_path):
        builder = StreamingBuilder(BASE_TEXT)
        names = list(ENCODINGS)
        builder.add_hierarchy(names[0], ENCODINGS[names[0]])
        clean = tmp_path / "clean.mhxb"
        builder.save(clean)
        for bad in ("<d>ab", "<d>wrong text</d>",
                    "<other>" + BASE_TEXT + "</other>"):
            with pytest.raises(ReproError):
                builder.add_hierarchy("extra", bad)
        after = tmp_path / "after.mhxb"
        builder.save(after)
        assert clean.read_bytes() == after.read_bytes()

    def test_empty_builder_save_rejected(self, tmp_path):
        builder = StreamingBuilder("ab")
        with pytest.raises(ReproError,
                           match="cannot save an empty document"):
            builder.save(tmp_path / "x.mhxb")

    def test_unknown_format_version(self, tmp_path):
        builder = StreamingBuilder("ab")
        builder.add_hierarchy("h", "<d>ab</d>")
        with pytest.raises(ReproError, match="unknown .mhxb format"):
            builder.save(tmp_path / "x.mhxb", format_version=3)


class TestStreamingShards:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_shard_files_byte_identical(self, tmp_path, n_shards):
        document = generate_document(GeneratorConfig(n_words=1600, seed=0))
        sources = {name: document[name].to_xml()
                   for name in document.hierarchy_names}
        parts, dom_stats = shard_document(document, n_shards)
        for index, part in enumerate(parts):
            save_engine(Engine(part), tmp_path / f"dom{index:04d}.mhxb")
        builder = StreamingBuilder(document.text)
        for name, source in sources.items():
            builder.add_hierarchy(name, source)
        stream_stats = builder.save_shards(
            n_shards, lambda index: tmp_path / f"st{index:04d}.mhxb")
        assert dom_stats.to_json() == stream_stats.to_json()
        for index in range(len(parts)):
            assert (tmp_path / f"dom{index:04d}.mhxb").read_bytes() == \
                (tmp_path / f"st{index:04d}.mhxb").read_bytes()

    def test_shard_count_validation(self):
        builder = StreamingBuilder("ab")
        builder.add_hierarchy("h", "<d>ab</d>")
        with pytest.raises(StoreError, match="shard count must be >= 1"):
            builder.shard_bounds(0)
        empty = StreamingBuilder("ab")
        with pytest.raises(StoreError, match="no hierarchies"):
            empty.shard_bounds(2)


class TestStoreIntegration:
    def _sources(self, document):
        return {name: document[name].to_xml()
                for name in document.hierarchy_names}

    def test_add_streaming_matches_add(self, tmp_path):
        document = generate_document(GeneratorConfig(n_words=400, seed=0))
        dom_store = DocumentStore.init(tmp_path / "dom")
        dom_store.add("doc", document)
        dom_store.close()
        stream_store = DocumentStore.init(tmp_path / "stream")
        snapshot = stream_store.add_streaming(
            "doc", document.text, self._sources(document))
        assert snapshot.version == len(document.hierarchy_names)
        assert (tmp_path / "dom" / "doc.mhxb").read_bytes() == \
            (tmp_path / "stream" / "doc.mhxb").read_bytes()
        result = stream_store.query("doc", "count(//w)")
        assert result.items == [400]
        stream_store.close()

    def test_add_corpus_streaming_matches_add_corpus(self, tmp_path):
        document = generate_document(GeneratorConfig(n_words=800, seed=2))
        dom_store = DocumentStore.init(tmp_path / "dom")
        dom_stats = dom_store.add_corpus("corp", document, shards=3)
        dom_store.close()
        stream_store = DocumentStore.init(tmp_path / "stream")
        stream_stats = stream_store.add_corpus_streaming(
            "corp", document.text, self._sources(document), shards=3)
        assert dom_stats.to_json() == stream_stats.to_json()
        for shard_file in sorted(path.name for path
                                 in (tmp_path / "dom").glob("*.mhxb")):
            assert (tmp_path / "dom" / shard_file).read_bytes() == \
                (tmp_path / "stream" / shard_file).read_bytes()
        result = stream_store.cquery('count(collection("corp")//w)')
        assert result.items == ["800"]
        stream_store.close()

    def test_add_streaming_is_transactional(self, tmp_path):
        store = DocumentStore.init(tmp_path / "s")
        with pytest.raises(MarkupError):
            store.add_streaming("bad", "ab", {"h": "<d>ab"})
        assert "bad" not in store
        assert not (tmp_path / "s" / "bad.mhxb").exists()
        store.add_streaming("bad", "ab", {"h": "<d>ab</d>"})
        assert "bad" in store
        store.close()

    def test_add_streaming_duplicate_and_bad_names(self, tmp_path):
        store = DocumentStore.init(tmp_path / "s")
        store.add_streaming("doc", "ab", {"h": "<d>ab</d>"})
        with pytest.raises(ReproError, match="already exists"):
            store.add_streaming("doc", "ab", {"h": "<d>ab</d>"})
        with pytest.raises(ReproError, match="invalid document name"):
            store.add_streaming("/bad/", "ab", {"h": "<d>ab</d>"})
        store.close()

    def test_add_corpus_streaming_is_transactional(self, tmp_path):
        store = DocumentStore.init(tmp_path / "s")
        with pytest.raises(MarkupError):
            store.add_corpus_streaming("bad", "ab", {"h": "<d>ab"},
                                       shards=2)
        assert "bad" not in store.corpora
        assert not list((tmp_path / "s").glob("bad.shard*"))
        store.close()

    def test_add_streaming_with_layers(self, tmp_path):
        prose = "the cat sat on the mat"
        tokens = []
        position = 0
        for word in prose.split(" "):
            tokens.append((position, position + len(word), "tok"))
            position += len(word) + 1
        store = DocumentStore.init(tmp_path / "s")
        store.add_streaming("doc", prose,
                            {"base": f"<doc><p>{prose}</p></doc>"},
                            layers={"tokens": tokens})
        assert store.query("doc", "count(//tok)").items == [6]
        store.close()


class TestCLI:
    def run_cli(self, capsys, *argv):
        from repro.cli import main
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    @pytest.fixture()
    def inputs(self, tmp_path):
        document = generate_document(GeneratorConfig(n_words=200, seed=0))
        (tmp_path / "base.txt").write_text(document.text, encoding="utf-8")
        specs = []
        for name in document.hierarchy_names:
            (tmp_path / f"{name}.xml").write_text(
                document[name].to_xml(), encoding="utf-8")
            specs.append(f"{name}={tmp_path}/{name}.xml")
        tokens, position = [], 0
        for word in document.text.split(" ")[:40]:
            tokens.append([position, position + len(word), "tok"])
            position += len(word) + 1
        (tmp_path / "tokens.json").write_text(json.dumps(tokens),
                                              encoding="utf-8")
        return document, specs

    def test_ingest_matches_pack(self, tmp_path, capsys, inputs):
        _document, specs = inputs
        code, out, _err = self.run_cli(
            capsys, "ingest", str(tmp_path / "out.mhxb"),
            "--text", str(tmp_path / "base.txt"), *specs)
        assert code == 0 and "streamed" in out
        code, _out, _err = self.run_cli(
            capsys, "pack", str(tmp_path / "pack.mhxb"),
            "--text", str(tmp_path / "base.txt"), *specs)
        assert code == 0
        assert (tmp_path / "out.mhxb").read_bytes() == \
            (tmp_path / "pack.mhxb").read_bytes()

    def test_ingest_with_layer(self, tmp_path, capsys, inputs):
        _document, specs = inputs
        code, out, _err = self.run_cli(
            capsys, "ingest", str(tmp_path / "out.mhxb"),
            "--text", str(tmp_path / "base.txt"), *specs,
            "--layer", f"tokens={tmp_path}/tokens.json")
        assert code == 0 and "1 standoff layers" in out
        engine = Engine.from_mhxb(tmp_path / "out.mhxb")
        assert engine.query("count(//tok)").items == [40]

    def test_ingest_bad_specs(self, tmp_path, capsys, inputs):
        _document, specs = inputs
        code, _out, err = self.run_cli(
            capsys, "ingest", str(tmp_path / "out.mhxb"),
            "--text", str(tmp_path / "base.txt"), "noequals")
        assert code == 1 and "bad encoding spec" in err
        (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
        code, _out, err = self.run_cli(
            capsys, "ingest", str(tmp_path / "out.mhxb"),
            "--text", str(tmp_path / "base.txt"), *specs,
            "--layer", f"l={tmp_path}/bad.json")
        assert code == 1 and "not valid JSON" in err

    def test_store_add_streaming(self, tmp_path, capsys, inputs):
        document, specs = inputs
        store_dir = str(tmp_path / "cat")
        assert self.run_cli(capsys, "store", "init", store_dir)[0] == 0
        code, out, _err = self.run_cli(
            capsys, "store", "add", store_dir, "doc", *specs,
            "--streaming", "--text", str(tmp_path / "base.txt"),
            "--durability", "off")
        assert code == 0 and "added 'doc'" in out
        code, out, _err = self.run_cli(
            capsys, "store", "query", store_dir, "doc", "count(//w)")
        assert code == 0 and out.strip() == "200"

    def test_store_add_streaming_requires_text(self, tmp_path, capsys,
                                               inputs):
        _document, specs = inputs
        store_dir = str(tmp_path / "cat")
        self.run_cli(capsys, "store", "init", store_dir)
        code, _out, err = self.run_cli(
            capsys, "store", "add", store_dir, "doc", *specs,
            "--streaming")
        assert code == 1 and "--streaming needs --text" in err

    def test_store_shard_streaming(self, tmp_path, capsys, inputs):
        _document, specs = inputs
        store_dir = str(tmp_path / "cat")
        self.run_cli(capsys, "store", "init", store_dir)
        code, out, _err = self.run_cli(
            capsys, "store", "shard", store_dir, "corp", *specs,
            "--streaming", "--text", str(tmp_path / "base.txt"),
            "--shards", "2", "--durability", "off")
        assert code == 0 and "sharded 'corp'" in out
        code, out, _err = self.run_cli(
            capsys, "store", "cquery", store_dir,
            'count(collection("corp")//w)')
        assert code == 0 and out.strip() == "200"

    def test_store_shard_streaming_generate(self, tmp_path, capsys):
        store_dir = str(tmp_path / "cat")
        self.run_cli(capsys, "store", "init", store_dir)
        code, out, _err = self.run_cli(
            capsys, "store", "shard", store_dir, "corp",
            "--streaming", "--generate", "400", "--shards", "2",
            "--durability", "off")
        assert code == 0 and "sharded 'corp'" in out
