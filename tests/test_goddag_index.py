"""Unit tests for the sorted span index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.goddag.index import SpanIndex
from repro.core.goddag.nodes import GElement, GText


class TestConstruction:
    def test_covers_root_elements_and_text(self, goddag):
        index = SpanIndex(goddag)
        kinds = {type(node) for node in index.nodes}
        assert GElement in kinds and GText in kinds
        assert goddag.root in index.nodes
        # 1 root + 16 elements + 22 text nodes
        assert len(index) == 39

    def test_sorted_by_start_then_wider_first(self, goddag):
        index = SpanIndex(goddag)
        pairs = [(node.start, -node.end) for node in index.nodes]
        assert pairs == sorted(pairs)

    def test_end_sorted_view(self, goddag):
        index = SpanIndex(goddag)
        assert list(index.ends_sorted) == sorted(index.ends)

    def test_cached_on_goddag(self, goddag):
        first = goddag.span_index()
        assert goddag.span_index() is first

    def test_maintained_in_place_on_hierarchy_change(self, goddag):
        from repro.cmh.spans import Span, SpanSet

        first = goddag.span_index()
        size = len(first)
        spans = SpanSet(goddag.text, [Span(0, 5, "x")])
        goddag.add_hierarchy_from_spans("tmp", spans, temporary=True)
        second = goddag.span_index()
        # The index is updated incrementally, not rebuilt.
        assert second is first
        assert goddag.index_full_builds == 1
        # <x> element + its text + the trailing text node after it
        assert len(second) == size + 3
        goddag.remove_hierarchy("tmp")
        assert goddag.span_index() is first
        assert len(goddag.span_index()) == size
        assert first.incremental_adds == 1
        assert first.incremental_removes == 1

    def test_lifo_lifecycle_recycles_ranks(self, goddag):
        """Repeated analyze-string-style add/remove cycles must not
        exhaust the packed order key's 16-bit rank field."""
        from repro.cmh.spans import Span, SpanSet

        goddag.span_index()
        spans = SpanSet(goddag.text, [Span(0, 5, "x")])
        before = goddag._next_rank
        for _ in range(3):
            goddag.add_hierarchy_from_spans("tmp", spans, temporary=True)
            node = goddag.nodes_of("tmp")[0]
            assert goddag.order_key(node) > 0
            goddag.remove_hierarchy("tmp")
        assert goddag._next_rank == before


class TestOffsetGuard:
    def test_oversized_span_offsets_rejected(self):
        from repro.errors import GoddagError
        from repro.core.goddag.index import _SubIndex

        class Huge:
            start = 0
            end = 1 << 31
            name = "x"

        with pytest.raises(GoddagError, match="2\\^31"):
            _SubIndex(0, [Huge()])


class TestSlices:
    def test_start_slice_bounds(self, goddag):
        index = SpanIndex(goddag)
        left, right = index.start_slice(11, 23)  # unawendendne's span
        starts = index.starts[left:right]
        assert (starts >= 11).all() and (starts < 23).all()
        # Everything outside the slice is outside the range.
        outside = np.concatenate([index.starts[:left],
                                  index.starts[right:]])
        assert not ((outside >= 11) & (outside < 23)).any()

    def test_end_slice_bounds(self, goddag):
        index = SpanIndex(goddag)
        left, right = index.end_slice(14, 24)
        ends = index.ends_sorted[left:right]
        assert (ends >= 14).all() and (ends < 24).all()

    def test_empty_slice(self, goddag):
        index = SpanIndex(goddag)
        left, right = index.start_slice(51, 51)
        assert left == right

    def test_name_mask(self, goddag):
        index = SpanIndex(goddag)
        mask = index.name_mask("w")
        assert mask.sum() == 6
        assert all(index.nodes[i].name == "w"
                   for i in np.flatnonzero(mask))
        assert index.name_mask("w") is mask  # cached

    def test_name_mask_root(self, goddag):
        index = SpanIndex(goddag)
        assert index.name_mask("r").sum() == 1


class TestExclusionHelpers:
    def test_root_excludes_only_itself_for_xdescendant(self, goddag):
        index = SpanIndex(goddag)
        mask = index.ancestor_or_self_exclusion(goddag.root, 0,
                                                len(index))
        excluded = [index.nodes[i] for i in np.flatnonzero(mask)]
        assert excluded == [goddag.root]

    def test_element_excludes_chain_and_root(self, goddag):
        index = SpanIndex(goddag)
        word = next(w for w in goddag.elements("w")
                    if w.string_value() == "gesceaftum")
        mask = index.ancestor_or_self_exclusion(word, 0, len(index))
        excluded = {index.nodes[i] for i in np.flatnonzero(mask)}
        assert word in excluded
        assert goddag.root in excluded
        assert any(getattr(n, "name", None) == "vline" for n in excluded)
        # Other hierarchies are never excluded.
        assert not any(getattr(n, "name", None) == "line"
                       for n in excluded)

    def test_is_descendant_or_self(self, goddag):
        index = SpanIndex(goddag)
        vline = next(goddag.elements("vline"))
        word = vline.children[0]
        assert index.is_descendant_or_self(vline, word)
        assert index.is_descendant_or_self(vline, vline)
        assert not index.is_descendant_or_self(word, vline)
        assert index.is_descendant_or_self(goddag.root, vline)
        assert not index.is_descendant_or_self(vline, goddag.root)
