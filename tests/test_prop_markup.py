"""Property tests: XML serialize∘parse round-trips and span algebra."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markup import parse, serialize
from repro.markup.dom import Comment, Document, Element, Text
from repro.markup.serializer import escape_attribute, escape_text
from repro.cmh.spans import SpanSet, spans_of

from tests.strategies import base_texts, span_sets

SETTINGS = settings(max_examples=60, deadline=None)

_names = st.sampled_from(["a", "b", "w", "line", "ϸ"])
_attr_values = st.text(alphabet="ab<>&\"'\n\tϸ ", max_size=8)
_text_values = st.text(alphabet="ab<>&ϸ ", min_size=1, max_size=12)


@st.composite
def dom_trees(draw, depth: int = 0) -> Element:
    element = Element(draw(_names))
    for key in draw(st.lists(_names, max_size=2, unique=True)):
        element.set(key, draw(_attr_values))
    if depth < 3:
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            kind = draw(st.sampled_from(["text", "element", "comment"]))
            if kind == "text":
                element.append(Text(draw(_text_values)))
            elif kind == "comment":
                element.append(Comment("c"))
            else:
                element.append(draw(dom_trees(depth=depth + 1)))
    return element


def signature(element: Element):
    children = []
    for child in element.children:
        if isinstance(child, Element):
            children.append(signature(child))
        elif isinstance(child, Text):
            if children and isinstance(children[-1], str):
                children[-1] += child.data  # adjacent text merges
            else:
                children.append(child.data)
        elif isinstance(child, Comment):
            children.append(("comment", child.data))
    return (element.name, tuple(sorted(element.attributes.items())),
            tuple(children))


@SETTINGS
@given(tree=dom_trees())
def test_serialize_parse_round_trip(tree):
    document = Document()
    document.append(tree)
    reparsed = parse(serialize(document))
    assert signature(reparsed.root) == signature(tree)


@SETTINGS
@given(text=st.text(alphabet="ab<>&\"'ϸ \n", max_size=20))
def test_text_escaping_round_trips(text):
    source = f"<a>{escape_text(text)}</a>"
    # Bare CR would be line-end-normalized; the alphabet avoids it.
    assert parse(source).root.text_content() == text


@SETTINGS
@given(value=st.text(alphabet="ab<>&\"'ϸ \n\t", max_size=20))
def test_attribute_escaping_round_trips(value):
    source = f'<a x="{escape_attribute(value)}"/>'
    assert parse(source).root.get("x") == value


@SETTINGS
@given(data=st.data())
def test_span_set_document_round_trip(data):
    text = data.draw(base_texts())
    spans = data.draw(span_sets(text))
    document = spans.to_document("r")
    assert document.root.text_content() == text
    recovered = sorted((s.start, s.end, s.name)
                       for s in spans_of(document))
    expected = sorted((s.start, s.end, s.name) for s in spans.spans)
    assert recovered == expected


@SETTINGS
@given(data=st.data())
def test_span_document_reparse_stable(data):
    text = data.draw(base_texts())
    spans = data.draw(span_sets(text))
    serialized = serialize(spans.to_document("r"))
    reparsed = parse(serialized)
    assert reparsed.root.text_content() == text
    assert serialize(reparsed) == serialized


@SETTINGS
@given(data=st.data())
def test_rebuilding_from_extracted_spans_is_identity(data):
    text = data.draw(base_texts())
    spans = data.draw(span_sets(text))
    document = spans.to_document("r")
    rebuilt = SpanSet(text, spans_of(document)).to_document("r")
    assert serialize(rebuilt) == serialize(document)
