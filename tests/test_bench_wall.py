"""Tests for the bench-regression wall (benchmarks/check_regression.py).

The wall script lives outside the package (it runs standalone in CI),
so it is loaded here by file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks"
    / "check_regression.py")
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)

BASELINE = {
    "schema": "repro-bench/1",
    "config": {"repeats": 41},
    "median_ns_per_op": {
        "S-AXES": {"descendant": 1000, "following": 2000},
        "S-TOTAL": {"workload": {"legacy": 50000, "speedup": 2.5}},
    },
}


def _candidate(**overrides):
    candidate = json.loads(json.dumps(BASELINE))
    axes = candidate["median_ns_per_op"]["S-AXES"]
    total = candidate["median_ns_per_op"]["S-TOTAL"]["workload"]
    for key, value in overrides.items():
        if key in axes:
            axes[key] = value
        else:
            total[key] = value
    return candidate


class TestCompare:
    def test_within_band_passes(self):
        regressions, notes = check_regression.compare(
            BASELINE, _candidate(descendant=1300), 0.4, 0.4)
        assert regressions == []
        assert any("descendant" in note for note in notes)

    def test_time_regression_fails(self):
        regressions, _ = check_regression.compare(
            BASELINE, _candidate(descendant=1500), 0.4, 0.4)
        assert len(regressions) == 1
        assert "descendant" in regressions[0]

    def test_speedup_drop_fails(self):
        regressions, _ = check_regression.compare(
            BASELINE, _candidate(speedup=1.2), 0.4, 0.4)
        assert len(regressions) == 1
        assert "speedup" in regressions[0]

    def test_speedup_improvement_passes(self):
        regressions, _ = check_regression.compare(
            BASELINE, _candidate(speedup=9.9), 0.4, 0.4)
        assert regressions == []

    def test_faster_times_pass(self):
        regressions, _ = check_regression.compare(
            BASELINE, _candidate(descendant=10, following=10), 0.4, 0.4)
        assert regressions == []

    def test_missing_metric_fails(self):
        candidate = _candidate()
        del candidate["median_ns_per_op"]["S-AXES"]["following"]
        regressions, _ = check_regression.compare(
            BASELINE, candidate, 0.4, 0.4)
        assert any("missing" in regression for regression in regressions)

    def test_config_subtree_is_not_compared(self):
        candidate = _candidate()
        candidate["config"]["repeats"] = 5  # quick run: fine
        regressions, _ = check_regression.compare(
            BASELINE, candidate, 0.4, 0.4)
        assert regressions == []


class TestCli:
    def test_exit_codes_and_report(self, tmp_path, capsys):
        baseline_path = tmp_path / "base.json"
        good_path = tmp_path / "good.json"
        bad_path = tmp_path / "bad.json"
        baseline_path.write_text(json.dumps(BASELINE))
        good_path.write_text(json.dumps(_candidate(descendant=1100)))
        bad_path.write_text(json.dumps(_candidate(descendant=9000)))

        assert check_regression.main(
            [f"{baseline_path}:{good_path}", "--tolerance", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "all metrics within tolerance" in out

        assert check_regression.main(
            [f"{baseline_path}:{bad_path}", "--tolerance", "0.4"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regressed" in captured.err

    def test_unreadable_payload_fails(self, tmp_path):
        baseline_path = tmp_path / "base.json"
        baseline_path.write_text(json.dumps(BASELINE))
        assert check_regression.main(
            [f"{baseline_path}:{tmp_path / 'absent.json'}"]) == 1
