"""Tests for shared utilities: intervals, name allocation, temp manager."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    NameAllocator,
    Span,
    contains,
    crosses,
    overlaps,
    strictly_after,
    strictly_before,
)

spans = st.builds(Span,
                  st.integers(min_value=0, max_value=20),
                  st.integers(min_value=0, max_value=20))


class TestSpan:
    def test_is_empty(self):
        assert Span(3, 3).is_empty
        assert Span(4, 3).is_empty
        assert not Span(3, 4).is_empty

    def test_len(self):
        assert len(Span(2, 6)) == 4
        assert len(Span(6, 2)) == 0

    def test_overlaps(self):
        assert overlaps(Span(0, 5), Span(4, 9))
        assert not overlaps(Span(0, 5), Span(5, 9))
        assert overlaps(Span(2, 3), Span(0, 9))

    def test_contains(self):
        assert contains(Span(0, 9), Span(2, 5))
        assert contains(Span(0, 9), Span(0, 9))
        assert not contains(Span(2, 5), Span(0, 9))
        assert contains(Span(2, 5), Span(3, 3))  # empty vacuously

    def test_strictly_before_after(self):
        assert strictly_before(Span(0, 3), Span(3, 5))
        assert not strictly_before(Span(0, 4), Span(3, 5))
        assert strictly_after(Span(3, 5), Span(0, 3))

    def test_crosses(self):
        assert crosses(Span(0, 5), Span(3, 8))
        assert not crosses(Span(0, 5), Span(2, 4))  # containment
        assert not crosses(Span(0, 5), Span(0, 5))  # equality
        assert not crosses(Span(0, 5), Span(5, 8))  # adjacency
        assert not crosses(Span(2, 2), Span(0, 5))  # empty

    @settings(max_examples=200, deadline=None)
    @given(a=spans, b=spans)
    def test_trichotomy_for_nonempty(self, a, b):
        if a.is_empty or b.is_empty:
            return
        relations = [
            strictly_before(a, b), strictly_after(a, b),
            crosses(a, b), contains(a, b) or contains(b, a),
        ]
        assert sum(relations) == 1

    @settings(max_examples=200, deadline=None)
    @given(a=spans, b=spans)
    def test_crosses_symmetric(self, a, b):
        assert crosses(a, b) == crosses(b, a)


class TestNameAllocator:
    def test_first_allocation_is_base(self):
        allocator = NameAllocator()
        assert allocator.allocate("rest") == "rest"

    def test_taken_base_gets_counter(self):
        allocator = NameAllocator(["rest"])
        assert allocator.allocate("rest") == "rest2"
        assert allocator.allocate("rest") == "rest3"

    def test_release_frees_name(self):
        allocator = NameAllocator()
        allocator.allocate("rest")
        allocator.release("rest")
        assert allocator.allocate("rest") == "rest"

    def test_reserve(self):
        allocator = NameAllocator()
        allocator.reserve("rest")
        assert allocator.allocate("rest") == "rest2"

    def test_independent_bases(self):
        allocator = NameAllocator()
        assert allocator.allocate("a") == "a"
        assert allocator.allocate("b") == "b"


class TestTemporaryHierarchyManager:
    def test_context_manager_cleans_up(self, goddag):
        from repro.cmh.spans import Span as ASpan, SpanSet
        from repro.core.goddag import TemporaryHierarchyManager

        before = goddag.hierarchy_names
        with TemporaryHierarchyManager(goddag) as manager:
            spans = SpanSet(goddag.text, [ASpan(0, 5, "res")])
            name = manager.create(spans)
            assert name == "rest"
            assert goddag.has_hierarchy("rest")
            top = manager.top_element(name)
            assert top.name == "res"
        assert goddag.hierarchy_names == before

    def test_cleanup_on_exception(self, goddag):
        from repro.cmh.spans import Span as ASpan, SpanSet
        from repro.core.goddag import TemporaryHierarchyManager

        with pytest.raises(RuntimeError):
            with TemporaryHierarchyManager(goddag) as manager:
                manager.create(SpanSet(goddag.text,
                                       [ASpan(0, 5, "res")]))
                raise RuntimeError("boom")
        assert not goddag.has_hierarchy("rest")

    def test_drop_all_idempotent(self, goddag):
        from repro.cmh.spans import Span as ASpan, SpanSet
        from repro.core.goddag import TemporaryHierarchyManager

        manager = TemporaryHierarchyManager(goddag)
        manager.create(SpanSet(goddag.text, [ASpan(0, 5, "res")]))
        manager.drop_all()
        manager.drop_all()
        assert not goddag.has_hierarchy("rest")

    def test_names_do_not_collide_with_existing(self, goddag):
        from repro.cmh.spans import Span as ASpan, SpanSet
        from repro.core.goddag import TemporaryHierarchyManager

        goddag.add_hierarchy_from_spans(
            "rest", SpanSet(goddag.text, [ASpan(0, 2, "x")]))
        manager = TemporaryHierarchyManager(goddag)
        name = manager.create(SpanSet(goddag.text, [ASpan(0, 5, "res")]))
        assert name == "rest2"
        manager.drop_all()
        goddag.remove_hierarchy("rest")


class TestErrors:
    def test_hierarchy_of_exceptions(self):
        from repro import errors

        assert issubclass(errors.MarkupError, errors.ReproError)
        assert issubclass(errors.AlignmentError, errors.CMHError)
        assert issubclass(errors.FunctionError,
                          errors.QueryEvaluationError)
        assert issubclass(errors.QuerySyntaxError, errors.QueryError)

    def test_markup_error_position_formatting(self):
        from repro.errors import MarkupError

        error = MarkupError("bad", line=3, column=7)
        assert "line 3" in str(error) and error.column == 7
        bare = MarkupError("bad")
        assert str(bare) == "bad"

    def test_alignment_error_fields(self):
        from repro.errors import AlignmentError

        error = AlignmentError("diverges", hierarchy="h", offset=12)
        assert error.hierarchy == "h" and error.offset == 12
