"""Unit tests for the pipeline's AST rewrite rules and analyses."""

from __future__ import annotations

import pytest

from repro.core.lang import ast
from repro.core.lang.parser import parse_query
from repro.core.plan.rewrite import (
    free_variables,
    is_pure,
    is_statically_boolean,
    rewrite,
    uses_focus,
    uses_position,
)


def rewrite_text(text: str) -> tuple[ast.Expr, list[str]]:
    return rewrite(parse_query(text))


class TestConstantFolding:
    def test_arithmetic_folds_to_literal(self):
        expr, notes = rewrite_text("1 + 2 * 3")
        assert expr == ast.Literal(7, expr.offset)
        assert any("constant-folding" in note for note in notes)

    def test_division_by_zero_left_for_runtime(self):
        expr, _notes = rewrite_text("1 div 0")
        assert isinstance(expr, ast.ArithmeticExpr)

    def test_unary_folds(self):
        expr, _notes = rewrite_text("-(3)")
        assert isinstance(expr, ast.Literal)
        assert expr.value == -3

    def test_comparison_folds(self):
        expr, _notes = rewrite_text("2 < 3")
        assert isinstance(expr, ast.Literal)
        assert expr.value is True

    def test_if_with_literal_condition_picks_branch(self):
        expr, _notes = rewrite_text("if (0) then 'a' else 'b'")
        assert expr == ast.Literal("b", expr.offset)

    def test_small_range_unrolls(self):
        expr, _notes = rewrite_text("1 to 3")
        assert isinstance(expr, ast.SequenceExpr)
        assert [item.value for item in expr.items] == [1, 2, 3]

    def test_and_or_fold_literals(self):
        expr, _notes = rewrite_text("1 = 1 or count(//w) > 0")
        # first operand folds true; the or collapses to a literal
        assert isinstance(expr, ast.Literal)
        assert expr.value is True

    def test_or_keeps_possibly_failing_prefix(self):
        expr, _notes = rewrite_text("count(//w) > 99 or 1 = 1")
        # the non-literal operand must still run (it could raise)
        assert isinstance(expr, ast.OrExpr)
        assert isinstance(expr.operands[-1], ast.Literal)

    def test_folding_reaches_predicates(self):
        expr, _notes = rewrite_text("/descendant::w[1 + 1]")
        predicate = expr.steps[0].predicates[0]
        assert predicate == ast.Literal(2, predicate.offset)


class TestStepFusion:
    def test_double_slash_fuses_to_descendant(self):
        expr, notes = rewrite_text("//w")
        assert expr.anchor == "root"
        assert len(expr.steps) == 1
        assert expr.steps[0].axis == "descendant"
        assert expr.steps[0].test == ast.NameTest("w")
        assert any("anchor-normalization" in n for n in notes)
        assert any("step-fusion" in n for n in notes)

    def test_wildcard_self_fuses(self):
        expr, notes = rewrite_text("/descendant::*/self::w")
        assert len(expr.steps) == 1
        assert expr.steps[0].axis == "descendant"
        assert expr.steps[0].test == ast.NameTest("w")

    def test_positional_predicate_blocks_fusion(self):
        expr, _notes = rewrite_text("//w[1]")
        # child::w[1] is per-parent; fusing would change positions
        assert len(expr.steps) == 2
        assert expr.steps[0].axis == "descendant-or-self"

    def test_boolean_predicate_keeps_fusion(self):
        expr, _notes = rewrite_text("//w[xancestor::dmg]")
        assert len(expr.steps) == 1
        assert expr.steps[0].axis == "descendant"
        assert len(expr.steps[0].predicates) == 1

    def test_attribute_wildcard_not_fused(self):
        expr, _notes = rewrite_text("/descendant::w/attribute::*/self::x")
        axes = [step.axis for step in expr.steps]
        assert "attribute" in axes and "self" in axes


class TestAnalyses:
    def test_free_variables_scoping(self):
        expr = parse_query(
            "for $x in //w let $y := $x return ($y, $z)")
        assert free_variables(expr) == frozenset({"z"})

    def test_uses_focus(self):
        assert uses_focus(parse_query("string(.)"))
        assert uses_focus(parse_query("position()"))
        assert not uses_focus(parse_query("string($x)"))
        assert not uses_focus(parse_query("/descendant::w"))

    def test_uses_position(self):
        assert uses_position(parse_query("position() = 2"))
        assert uses_position(parse_query("//w[last()]"))
        assert not uses_position(parse_query("string(.) = 'a'"))

    def test_statically_boolean(self):
        assert is_statically_boolean(parse_query("1 = 2"))
        assert is_statically_boolean(parse_query("/descendant::w"))
        assert is_statically_boolean(parse_query("exists(//w)"))
        assert not is_statically_boolean(parse_query("1"))
        assert not is_statically_boolean(parse_query("count(//w)"))
        assert not is_statically_boolean(parse_query("//w/string(.)"))

    def test_purity(self):
        assert is_pure(parse_query("count(//w) + 1"))
        assert not is_pure(parse_query("analyze-string(., 'x')"))
        assert not is_pure(parse_query("my-custom-fn(1)"))


class TestPlannerAnnotations:
    def test_invariant_let_marked(self):
        from repro.core.plan import compile_query

        compiled = compile_query(
            "for $w in //w let $c := count(//line) return $c")
        assert any("hoist-invariant" in note for note in compiled.rewrites)

    def test_dependent_let_not_marked(self):
        from repro.core.plan import compile_query

        compiled = compile_query(
            "for $w in //w let $c := string($w) return $c")
        assert not any("hoist-invariant" in n for n in compiled.rewrites)

    def test_impure_let_not_marked(self):
        from repro.core.plan import compile_query

        compiled = compile_query(
            "for $w in //w let $r := analyze-string('a', 'a') return 1")
        assert not any("hoist-invariant" in n for n in compiled.rewrites)

    def test_reverse_axis_normalization_noted(self):
        from repro.core.plan import compile_query

        compiled = compile_query("/descendant::w/ancestor::line/self::*")
        assert any("reverse-axis-normalization" in note
                   for note in compiled.rewrites)


class TestRewritePreservesErrors:
    def test_unknown_function_still_raises_at_runtime(self):
        from repro.core.plan import compile_query
        from repro.corpus.boethius import boethius_document
        from repro.core.goddag import KyGoddag
        from repro.errors import QueryEvaluationError

        goddag = KyGoddag.build(boethius_document(validate=False))
        compiled = compile_query("if (1 = 1) then 1 else nope()")
        assert compiled.execute(goddag) == [1]
        failing = compile_query("if (1 = 2) then 1 else nope()")
        with pytest.raises(QueryEvaluationError):
            failing.execute(goddag)
