"""Integration tests: every printed artifact of the paper (§4, Ex. 1).

These are the reproduction's acceptance tests — see EXPERIMENTS.md for
the paper-vs-measured discussion of the two documented deltas.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import evaluate_query, serialize_items
from repro.experiments.paperdata import (
    EXAMPLE_1,
    FIGURE_2_INVENTORY,
    PAPER_QUERIES,
)
from repro.experiments.runner import (
    format_reports,
    run_all,
    run_experiment,
)


def output_of(goddag, query: str) -> str:
    return serialize_items(evaluate_query(goddag, query))


class TestPaperQueryOutputs:
    def test_q_i1_exact(self, goddag):
        spec = PAPER_QUERIES[0]
        assert output_of(goddag, spec.query) == spec.paper_output

    def test_q_i1_returns_two_line_strings(self, goddag):
        spec = PAPER_QUERIES[0]
        items = evaluate_query(goddag, spec.query)
        assert items == ["gesceaftum unawendendne sin",
                         "gallice sibbe gecynde ϸa"]

    def test_q_i2_literal_strict_output(self, goddag):
        spec = PAPER_QUERIES[1]
        assert output_of(goddag, spec.query) == spec.expected_output

    def test_q_i2_amended_matches_paper_highlighting(self, goddag):
        spec = PAPER_QUERIES[1]
        assert output_of(goddag, spec.amended_query) == spec.amended_output
        # The amended output bolds exactly the damaged words' leaves.
        assert spec.amended_output.count("<b>") == 6

    def test_q_ii1_exact(self, goddag):
        spec = PAPER_QUERIES[2]
        assert output_of(goddag, spec.query) == spec.paper_output

    def test_q_iii1_literal(self, goddag):
        spec = PAPER_QUERIES[3]
        assert output_of(goddag, spec.query) == spec.expected_output

    def test_q_iii1_amended_intent(self, goddag):
        spec = PAPER_QUERIES[3]
        assert output_of(goddag, spec.amended_query) == spec.amended_output

    def test_example_1_exact(self, goddag):
        query = (f"analyze-string({EXAMPLE_1['target_query']}, "
                 f"\"{EXAMPLE_1['pattern']}\")")
        assert output_of(goddag, query) == EXAMPLE_1["paper_output"]

    def test_queries_leave_goddag_clean(self, goddag):
        """Definition 4(5): temporaries die with their query."""
        before = (goddag.hierarchy_names,
                  [l.text for l in goddag.leaves()])
        for spec in PAPER_QUERIES:
            output_of(goddag, spec.query)
        after = (goddag.hierarchy_names,
                 [l.text for l in goddag.leaves()])
        assert before == after

    def test_queries_idempotent(self, goddag):
        for spec in PAPER_QUERIES:
            first = output_of(goddag, spec.query)
            second = output_of(goddag, spec.query)
            assert first == second


class TestFigure2:
    def test_inventory(self, goddag):
        from repro.core.goddag import collect

        stats = collect(goddag)
        assert stats.leaf_count == FIGURE_2_INVENTORY["leaves"]
        for hierarchy in stats.hierarchies:
            expected = FIGURE_2_INVENTORY["elements"][hierarchy.name]
            assert hierarchy.elements_by_name == expected


class TestRunner:
    def test_run_all_statuses(self):
        reports = {r.id: r for r in run_all()}
        assert reports["FIG2"].matches_paper
        assert reports["EX1"].matches_paper
        assert reports["Q-I.1"].matches_paper
        assert reports["Q-II.1"].matches_paper
        # The two documented deltas still match our derivation and
        # their amended variants match their documented expectations.
        for delta_id in ("Q-I.2", "Q-III.1"):
            report = reports[delta_id]
            assert report.matches_expected
            assert report.amended_matches

    def test_run_experiment_by_id(self):
        assert run_experiment("Q-I.1").matches_paper
        with pytest.raises(KeyError):
            run_experiment("Q-IX.9")

    def test_format_reports_readable(self):
        text = format_reports(run_all())
        assert "Q-III.1" in text
        assert "paper" in text and "measured" in text
