"""Property tests: the interval implementation of Definition 1 agrees
with the *literal* leaf-set semantics, plus the axis algebra.

``literal_*`` below compute each extended axis exactly as the paper
writes it — with explicit leaf sets, ``min``/``max`` over the leaf
order, and within-hierarchy ancestor/descendant exclusions — and the
tests assert the production (interval-based) axes return identical node
sets on randomly generated multihierarchical documents.

The slice-based *standard* axes (DESIGN.md §5) are additionally checked
element-for-element against the seed's walkers, preserved in
:mod:`repro.core.goddag.naive`.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.goddag import KyGoddag, evaluate_axis
from repro.core.goddag.axes import ORDERED_AXES, emits_document_order
from repro.core.goddag.naive import NAIVE_STANDARD_AXES
from repro.core.goddag.nodes import GElement, GText, _HierarchyNode

from tests.strategies import multihierarchical_documents

SETTINGS = settings(max_examples=40, deadline=None)


def span_nodes(goddag):
    """Root + every element/text node (the extended axes' domain)."""
    nodes = [goddag.root]
    for name in goddag.hierarchy_names:
        nodes.extend(n for n in goddag.nodes_of(name)
                     if isinstance(n, (GElement, GText)))
    return nodes


def leaf_ids(goddag, node):
    return frozenset(id(l) for l in goddag.leaves_of(node))


def leaf_positions(goddag, node):
    return sorted(l.start for l in goddag.leaves_of(node))


def in_same_hierarchy_descendants(node, other):
    if isinstance(node, _HierarchyNode):
        return node.is_ancestor_of(other)
    # The root's descendants are all hierarchy nodes.
    return isinstance(other, _HierarchyNode) or other is node


def literal_xancestor(goddag, n):
    ln = leaf_ids(goddag, n)
    if not ln:
        return set()
    out = set()
    for m in span_nodes(goddag):
        if m is n or in_same_hierarchy_descendants(n, m):
            continue
        lm = leaf_ids(goddag, m)
        if lm and ln <= lm:
            out.add(id(m))
    return out


def literal_xdescendant(goddag, n):
    ln = leaf_ids(goddag, n)
    if not ln:
        return set()
    out = set()
    for m in span_nodes(goddag):
        if m is n or in_same_hierarchy_descendants(m, n):
            continue
        lm = leaf_ids(goddag, m)
        if lm and lm <= ln:
            out.add(id(m))
    for leaf in goddag.leaves():
        if id(leaf) in ln and not isinstance(n, type(leaf)):
            out.add(id(leaf))
    return out


def literal_xfollowing(goddag, n):
    positions = leaf_positions(goddag, n)
    if not positions:
        return set()
    out = set()
    for m in span_nodes(goddag) + list(goddag.leaves()):
        other = leaf_positions(goddag, m)
        if other and max(positions) < min(other):
            out.add(id(m))
    return out


def literal_overlapping(goddag, n):
    ln = leaf_ids(goddag, n)
    positions = leaf_positions(goddag, n)
    if not positions:
        return set()
    out = set()
    for m in span_nodes(goddag):
        if m is n:
            continue
        lm = leaf_ids(goddag, m)
        other = leaf_positions(goddag, m)
        if not other or not (ln & lm):
            continue
        preceding = (min(other) < min(positions) <= max(other)
                     and max(positions) > max(other))
        following = (min(other) <= max(positions) < max(other)
                     and min(positions) < min(other))
        if preceding or following:
            out.add(id(m))
    return out


@SETTINGS
@given(document=multihierarchical_documents())
def test_xancestor_matches_literal_definition(document):
    goddag = KyGoddag.build(document)
    for node in span_nodes(goddag):
        measured = {id(m) for m in evaluate_axis(goddag, "xancestor", node)}
        assert measured == literal_xancestor(goddag, node)


@SETTINGS
@given(document=multihierarchical_documents())
def test_xdescendant_matches_literal_definition(document):
    goddag = KyGoddag.build(document)
    for node in span_nodes(goddag):
        measured = {id(m)
                    for m in evaluate_axis(goddag, "xdescendant", node)}
        assert measured == literal_xdescendant(goddag, node)


@SETTINGS
@given(document=multihierarchical_documents())
def test_xfollowing_matches_literal_definition(document):
    goddag = KyGoddag.build(document)
    for node in span_nodes(goddag):
        measured = {id(m)
                    for m in evaluate_axis(goddag, "xfollowing", node)}
        assert measured == literal_xfollowing(goddag, node)


@SETTINGS
@given(document=multihierarchical_documents())
def test_overlapping_matches_literal_definition(document):
    goddag = KyGoddag.build(document)
    for node in span_nodes(goddag):
        measured = {id(m)
                    for m in evaluate_axis(goddag, "overlapping", node)}
        assert measured == literal_overlapping(goddag, node)


@SETTINGS
@given(document=multihierarchical_documents())
def test_xfollowing_xpreceding_duality(document):
    goddag = KyGoddag.build(document)
    nodes = span_nodes(goddag)
    for node in nodes:
        for other in evaluate_axis(goddag, "xfollowing", node):
            assert node in evaluate_axis(goddag, "xpreceding", other)
        for other in evaluate_axis(goddag, "xpreceding", node):
            assert node in evaluate_axis(goddag, "xfollowing", other)


@SETTINGS
@given(document=multihierarchical_documents())
def test_xancestor_xdescendant_duality(document):
    goddag = KyGoddag.build(document)
    for node in span_nodes(goddag):
        for other in evaluate_axis(goddag, "xancestor", node):
            if isinstance(other, (GElement, GText)) or other is goddag.root:
                assert node in evaluate_axis(goddag, "xdescendant", other)


@SETTINGS
@given(document=multihierarchical_documents())
def test_overlapping_symmetry_and_directions(document):
    goddag = KyGoddag.build(document)
    for node in span_nodes(goddag):
        for other in evaluate_axis(goddag, "preceding-overlapping", node):
            assert node in evaluate_axis(goddag, "following-overlapping",
                                         other)
        for other in evaluate_axis(goddag, "overlapping", node):
            assert node in evaluate_axis(goddag, "overlapping", other)


@SETTINGS
@given(document=multihierarchical_documents())
def test_standard_axes_stay_in_hierarchy(document):
    goddag = KyGoddag.build(document)
    for name in goddag.hierarchy_names:
        for node in goddag.nodes_of(name):
            for axis in ("descendant", "following", "preceding",
                         "following-sibling", "preceding-sibling"):
                for result in evaluate_axis(goddag, axis, node):
                    if isinstance(result, _HierarchyNode):
                        assert result.hierarchy == name


@SETTINGS
@given(document=multihierarchical_documents())
def test_document_order_is_total(document):
    goddag = KyGoddag.build(document)
    keys = [goddag.order_key(n) for n in goddag.iter_nodes()]
    assert len(set(keys)) == len(keys)
    assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# standard axes: the slice rewrite equals the seed's walkers
# ---------------------------------------------------------------------------


def all_context_nodes(goddag):
    """Root, every hierarchy node, and every leaf."""
    nodes = [goddag.root]
    for name in goddag.hierarchy_names:
        nodes.extend(goddag.nodes_of(name))
    nodes.extend(goddag.leaves())
    return nodes


@SETTINGS
@given(document=multihierarchical_documents())
def test_standard_axes_match_seed_walkers(document):
    goddag = KyGoddag.build(document)
    for node in all_context_nodes(goddag):
        for axis, oracle in NAIVE_STANDARD_AXES.items():
            measured = evaluate_axis(goddag, axis, node)
            expected = oracle(goddag, node)
            assert len(measured) == len(expected), (axis, node)
            assert {id(m) for m in measured} == \
                {id(m) for m in expected}, (axis, node)


@SETTINGS
@given(document=multihierarchical_documents())
def test_or_self_axes_match_seed_walkers(document):
    goddag = KyGoddag.build(document)
    for node in all_context_nodes(goddag):
        for axis, base in (("descendant-or-self", "descendant"),
                           ("ancestor-or-self", "ancestor")):
            measured = {id(m) for m in evaluate_axis(goddag, axis, node)}
            expected = {id(m) for m in
                        NAIVE_STANDARD_AXES[base](goddag, node)}
            expected.add(id(node))
            assert measured == expected, (axis, node)


@SETTINGS
@given(document=multihierarchical_documents())
def test_ordered_axes_emit_document_order(document):
    """The evaluator skips sorting exactly when this property holds:
    ordered axes emit strictly increasing Definition 3 keys."""
    goddag = KyGoddag.build(document)
    for node in all_context_nodes(goddag):
        for axis in ORDERED_AXES:
            if not emits_document_order(axis, node):
                continue
            keys = [goddag.order_key(n)
                    for n in evaluate_axis(goddag, axis, node)]
            assert keys == sorted(keys), (axis, node)
            assert len(set(keys)) == len(keys), (axis, node)
