"""Tests for the evaluator: paths, FLWOR, operators, constructors."""

from __future__ import annotations

import pytest

from repro.errors import QueryEvaluationError
from repro.core.runtime import evaluate_query, serialize_items
from repro.markup import dom


def run(goddag, query, **kwargs):
    return evaluate_query(goddag, query, **kwargs)


def run_str(goddag, query, **kwargs):
    return serialize_items(run(goddag, query, **kwargs))


class TestPathEvaluation:
    def test_absolute_descendant(self, goddag):
        assert run_str(goddag, "count(/descendant::w)") == "6"

    def test_double_slash(self, goddag):
        assert run_str(goddag, "count(//w)") == "6"

    def test_name_test_crosses_hierarchies_from_root(self, goddag):
        assert run_str(goddag, "count(/child::*)") == "10"

    def test_results_in_document_order(self, goddag):
        words = run(goddag, "/descendant::w")
        texts = [w.string_value() for w in words]
        assert texts == ["gesceaftum", "unawendendne", "singallice",
                         "sibbe", "gecynde", "ϸa"]

    def test_predicate_position(self, goddag):
        assert run_str(goddag, "string(/descendant::w[3])") == "singallice"

    def test_predicate_last(self, goddag):
        assert run_str(goddag, "string(/descendant::w[last()])") == "ϸa"

    def test_reverse_axis_position(self, goddag):
        # From the "w" leaf, ancestor::node()[1] is the nearest ancestor.
        query = ("string(name(/descendant::dmg[1]"
                 "/ancestor-or-self::*[1]))")
        assert run_str(goddag, query) == "dmg"

    def test_string_equality_predicate(self, goddag):
        query = '/descendant::w[string(.) = "sibbe"]'
        assert [w.string_value() for w in run(goddag, query)] == ["sibbe"]

    def test_leaf_kind_test(self, goddag):
        assert run_str(goddag, "count(/descendant::leaf())") == "16"

    def test_text_kind_test_with_hierarchy(self, goddag):
        assert run_str(
            goddag, "count(/descendant::text('physical'))") == "2"
        assert run_str(
            goddag, "count(/descendant::text())") == "22"

    def test_node_test_with_hierarchy_list(self, goddag):
        count = run_str(
            goddag, "count(/descendant::node('physical, damage'))")
        # physical: 2 line + 2 text; damage: 2 dmg + 4 text; leaves: 16.
        assert count == str(2 + 2 + 2 + 4 + 16)

    def test_wildcard_with_hierarchy(self, goddag):
        assert run_str(goddag, "count(/descendant::*('damage'))") == "2"

    def test_unknown_hierarchy_raises(self, goddag):
        with pytest.raises(QueryEvaluationError, match="unknown hierarchy"):
            run(goddag, "/descendant::text('typo')")

    def test_attribute_axis(self):
        from repro.cmh import MultihierarchicalDocument
        from repro.core.goddag import KyGoddag

        document = MultihierarchicalDocument.from_xml(
            "ab", {"h": '<r><x n="1">ab</x></r>'})
        goddag = KyGoddag.build(document)
        assert serialize_items(
            evaluate_query(goddag, "string(/descendant::x/@n)")) == "1"

    def test_path_over_atomic_rejected(self, goddag):
        with pytest.raises(QueryEvaluationError, match="navigate"):
            run(goddag, '("a")/child::b')

    def test_context_item_string(self, goddag):
        assert run_str(goddag,
                       "/descendant::w[1]/string(.)") == "gesceaftum"


class TestOrderedStepFastPath:
    """Single forward-axis steps over ordered contexts skip sorting."""

    def test_descendant_steps_skip_sort(self, goddag):
        from repro.core.runtime.evaluator import LAST_QUERY_STATS

        result = run(goddag, "/descendant::w")
        assert len(result) == 6
        assert LAST_QUERY_STATS["ordered_steps"] > 0
        assert LAST_QUERY_STATS["ordered_steps"] <= \
            LAST_QUERY_STATS["axis_steps"]

    def test_reverse_axis_still_counts_positions_backwards(self, goddag):
        # preceding:: positions count away from the context node; the
        # fast path must not disturb that (single-input reverse step).
        assert run_str(
            goddag,
            "string(/descendant::w[last()]/preceding::w[1])") == "gecynde"

    def test_single_input_reverse_result_is_document_ordered(self, goddag):
        words = run(goddag, "/descendant::w[last()]/preceding::w")
        texts = [w.string_value() for w in words]
        assert texts == ["gesceaftum", "unawendendne", "singallice",
                         "sibbe", "gecynde"]


class TestOperators:
    def test_arithmetic(self, goddag):
        assert run_str(goddag, "1 + 2 * 3") == "7"
        assert run_str(goddag, "7 mod 3") == "1"
        assert run_str(goddag, "7 idiv 2") == "3"
        assert run_str(goddag, "1 div 2") == "0.5"
        assert run_str(goddag, "-(3 - 5)") == "2"

    def test_division_by_zero(self, goddag):
        with pytest.raises(QueryEvaluationError, match="zero"):
            run(goddag, "1 div 0")

    def test_empty_operand_propagates(self, goddag):
        assert run(goddag, "() + 1") == []

    def test_general_comparison_existential(self, goddag):
        assert run(goddag, "(1, 2, 3) = 2") == [True]
        assert run(goddag, "(1, 2) = (8, 9)") == [False]

    def test_numeric_string_promotion(self, goddag):
        assert run(goddag, '"2" = 2') == [True]

    def test_value_comparison(self, goddag):
        assert run(goddag, '"a" lt "b"') == [True]
        assert run(goddag, "() eq 1") == []

    def test_value_comparison_rejects_sequences(self, goddag):
        with pytest.raises(QueryEvaluationError, match="singleton"):
            run(goddag, "(1, 2) eq 1")

    def test_node_identity(self, goddag):
        assert run(goddag, "/descendant::w[1] is /descendant::w[1]") == \
            [True]
        assert run(goddag, "/descendant::w[1] is /descendant::w[2]") == \
            [False]

    def test_node_order_comparison(self, goddag):
        assert run(goddag, "/descendant::w[1] << /descendant::w[2]") == \
            [True]

    def test_range(self, goddag):
        assert run(goddag, "2 to 5") == [2, 3, 4, 5]
        assert run(goddag, "5 to 2") == []

    def test_union_sorts_and_dedupes(self, goddag):
        result = run(goddag,
                     "/descendant::w[2] | /descendant::w[1] "
                     "| /descendant::w[1]")
        assert [w.string_value() for w in result] == [
            "gesceaftum", "unawendendne"]

    def test_intersect_except(self, goddag):
        assert run_str(goddag,
                       "count(/descendant::w intersect /descendant::w[1])"
                       ) == "1"
        assert run_str(goddag,
                       "count(/descendant::w except /descendant::w[1])"
                       ) == "5"

    def test_or_and_short_circuit(self, goddag):
        assert run(goddag, "1 = 1 or 1 div 0") == [True]
        assert run(goddag, "1 = 2 and 1 div 0") == [False]

    def test_ebv_of_multiple_atomics_rejected(self, goddag):
        with pytest.raises(QueryEvaluationError, match="effective boolean"):
            run(goddag, 'if ((1, 2)) then 1 else 2')


class TestFLWOR:
    def test_for_iterates(self, goddag):
        assert run(goddag, "for $i in (1, 2, 3) return $i * 2") == [2, 4, 6]

    def test_for_at(self, goddag):
        assert run(goddag,
                   'for $w at $i in /descendant::w return $i') == \
            [1, 2, 3, 4, 5, 6]

    def test_let_binds_sequence(self, goddag):
        assert run(goddag,
                   "let $s := (1, 2, 3) return count($s)") == [3]

    def test_where_filters(self, goddag):
        assert run(goddag,
                   "for $i in 1 to 6 where $i mod 2 = 0 return $i") == \
            [2, 4, 6]

    def test_order_by_ascending(self, goddag):
        query = ("for $w in /descendant::w order by string-length("
                 "string($w)) , string($w) return string($w)")
        assert run(goddag, query) == [
            "ϸa", "sibbe", "gecynde", "gesceaftum", "singallice",
            "unawendendne"]

    def test_order_by_descending(self, goddag):
        assert run(goddag,
                   "for $i in (2, 3, 1) order by $i descending return $i"
                   ) == [3, 2, 1]

    def test_order_by_empty_least(self, goddag):
        query = ("for $s in ((), 2, 1) order by $s return "
                 "if (empty($s)) then 0 else $s")
        # Tuple iteration over a 'for' does not bind empty; use let:
        assert run(goddag,
                   "for $p in (1, 2) order by $p return $p") == [1, 2]
        del query

    def test_nested_flwor(self, goddag):
        assert run(goddag,
                   "for $i in (1, 2) return for $j in (10, 20) "
                   "return $i + $j") == [11, 21, 12, 22]

    def test_quantified_some_every(self, goddag):
        assert run(goddag,
                   "some $w in /descendant::w satisfies "
                   'string($w) = "sibbe"') == [True]
        assert run(goddag,
                   "every $w in /descendant::w satisfies "
                   "string-length(string($w)) > 1") == [True]
        assert run(goddag,
                   "every $w in /descendant::w satisfies "
                   "string-length(string($w)) > 2") == [False]

    def test_if_else(self, goddag):
        assert run(goddag, "if (1 = 1) then 'y' else 'n'") == ["y"]
        assert run(goddag, "if (1 = 2) then 'y' else 'n'") == ["n"]

    def test_undefined_variable(self, goddag):
        with pytest.raises(QueryEvaluationError, match="undefined variable"):
            run(goddag, "$nope")

    def test_external_variables(self, goddag):
        assert run(goddag, "$x + 1", variables={"x": [41]}) == [42]


class TestConstructors:
    def test_simple_element(self, goddag):
        result = run(goddag, "<b>text</b>")
        assert isinstance(result[0], dom.Element)
        assert serialize_items(result) == "<b>text</b>"

    def test_empty_element(self, goddag):
        assert run_str(goddag, "<br/>") == "<br/>"

    def test_enclosed_leaf_copied_as_text(self, goddag):
        result = run_str(goddag,
                         "for $l in /descendant::leaf()[4] "
                         "return <b>{$l}</b>")
        assert result == "<b>w</b>"

    def test_enclosed_element_deep_copied(self, goddag):
        result = run_str(goddag,
                         "<out>{/descendant::dmg[1]}</out>")
        assert result == "<out><dmg>w</dmg></out>"

    def test_adjacent_atomics_space_joined(self, goddag):
        assert run_str(goddag, "<s>{1, 2, 3}</s>") == "<s>1 2 3</s>"

    def test_attribute_value_template(self, goddag):
        assert run_str(goddag, '<a n="{1+1}"/>') == '<a n="2"/>'

    def test_nested_constructors(self, goddag):
        assert run_str(goddag, "<i><b>{'x'}</b></i>") == "<i><b>x</b></i>"

    def test_escaping_in_serialization(self, goddag):
        # '&' in a string literal must itself be an entity reference.
        assert run_str(goddag, "<a>{'x < y &amp; z'}</a>") == \
            "<a>x &lt; y &amp; z</a>"

    def test_constructed_nodes_have_string_value(self, goddag):
        assert run_str(goddag, "string(<b>un<i>awe</i></b>)") == "unawe"

    def test_sequence_of_constructors_and_text(self, goddag):
        assert run_str(goddag, "<b>x</b>, 'mid', <br/>") == \
            "<b>x</b>mid<br/>"


class TestSerializationModes:
    def test_paper_mode_concatenates(self, goddag):
        items = run(goddag, "'a', 'b'")
        assert serialize_items(items, mode="paper") == "ab"

    def test_xquery_mode_spaces_atomics(self, goddag):
        items = run(goddag, "'a', 'b'")
        assert serialize_items(items, mode="xquery") == "a b"

    def test_unknown_mode_rejected(self, goddag):
        with pytest.raises(ValueError):
            serialize_items([], mode="weird")

    def test_gnode_element_serialization(self, goddag):
        assert run_str(goddag, "/descendant::dmg[1]") == "<dmg>w</dmg>"

    def test_leaf_serialization_escapes(self, goddag):
        items = run(goddag, "/descendant::leaf()[1]")
        assert serialize_items(items) == "gesceaftum"
