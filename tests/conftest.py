"""Shared fixtures: the paper's Figure 1 document in every form."""

from __future__ import annotations

import pytest

from repro.cmh import MultihierarchicalDocument
from repro.core.goddag import KyGoddag
from repro.corpus.boethius import BASE_TEXT, ENCODINGS, boethius_document


@pytest.fixture()
def boethius_doc() -> MultihierarchicalDocument:
    """A fresh Figure 1 multihierarchical document."""
    return boethius_document(validate=False)


@pytest.fixture()
def goddag(boethius_doc: MultihierarchicalDocument) -> KyGoddag:
    """A fresh KyGODDAG of the Figure 1 document."""
    return KyGoddag.build(boethius_doc)


@pytest.fixture(scope="session")
def base_text() -> str:
    return BASE_TEXT


@pytest.fixture(scope="session")
def encodings() -> dict[str, str]:
    return dict(ENCODINGS)
