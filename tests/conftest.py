"""Shared fixtures: the paper's Figure 1 document in every form.

Also registers the hypothesis profiles: the default settings serve
interactive and PR runs; ``--hypothesis-profile=nightly`` (the
scheduled CI job) multiplies example counts for the property suites —
``tests/test_prop_updates.py`` reads the active profile's
``max_examples`` at import time to scale its fuzz budget.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.cmh import MultihierarchicalDocument
from repro.core.goddag import KyGoddag
from repro.corpus.boethius import BASE_TEXT, ENCODINGS, boethius_document

settings.register_profile(
    "nightly", max_examples=1000, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
    print_blob=True)

if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture()
def boethius_doc() -> MultihierarchicalDocument:
    """A fresh Figure 1 multihierarchical document."""
    return boethius_document(validate=False)


@pytest.fixture()
def goddag(boethius_doc: MultihierarchicalDocument) -> KyGoddag:
    """A fresh KyGODDAG of the Figure 1 document."""
    return KyGoddag.build(boethius_doc)


@pytest.fixture(scope="session")
def base_text() -> str:
    return BASE_TEXT


@pytest.fixture(scope="session")
def encodings() -> dict[str, str]:
    return dict(ENCODINGS)
