"""Thread-stress tests: snapshot readers racing the store writer.

The acceptance bar of DESIGN.md §10: N reader threads querying pinned
snapshots concurrently with a writer applying update sequences — every
reader must observe a *version-consistent* result set (verified
against a single-threaded replay of the same updates) with zero torn
reads.

Scaled up by the nightly CI profile through ``REPRO_STRESS_READERS`` /
``REPRO_STRESS_BATCHES`` / ``REPRO_STRESS_MIN_READS``.
"""

from __future__ import annotations

import os
import threading
import time

from repro.api import Engine
from repro.corpus.boethius import boethius_document
from repro.store import DocumentStore

READERS = int(os.environ.get("REPRO_STRESS_READERS", "4"))
BATCHES = int(os.environ.get("REPRO_STRESS_BATCHES", "16"))
#: every reader must complete at least this many full probe rounds
MIN_READS = int(os.environ.get("REPRO_STRESS_MIN_READS", "8"))

PROBES = [
    "count(/descendant::*)",
    "for $n in /descendant::* return name($n)",
    "/descendant::line[overlapping::w or xdescendant::w]/string(.)",
]

#: four-phase churn cycle: two in-place renames (component patch), one
#: text-bearing insert and its delete (full rebuild path)
_CYCLE = [
    'rename node /descendant::w[1] as "wx"',
    'rename node /descendant::wx[1] as "w"',
    'insert node <note>burst</note> after /descendant::w[2]',
    "delete node /descendant::note[1]",
]


def _batches() -> list[list[str]]:
    return [[_CYCLE[index % len(_CYCLE)]] for index in range(BATCHES)]


def _replay_expected() -> dict[int, dict[str, str]]:
    """Single-threaded replay: version -> probe -> serialized result."""
    engine = Engine(boethius_document(validate=False))
    expected = {engine.version: {probe: engine.query(probe).serialize()
                                 for probe in PROBES}}
    for batch in _batches():
        for statement in batch:
            engine.update(statement)
        expected[engine.version] = {
            probe: engine.query(probe).serialize() for probe in PROBES}
    return expected


class TestSnapshotReadersVsWriter:
    def test_readers_see_version_consistent_results(self, tmp_path):
        expected = _replay_expected()
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))

        writer_done = threading.Event()
        errors: list[str] = []
        observations: list[tuple[int, int]] = []  # (reader, version)
        lock = threading.Lock()

        def writer() -> None:
            try:
                for batch in _batches():
                    store.update("boe", batch, persist=False)
                    time.sleep(0.001)  # let readers interleave
            except Exception as error:  # pragma: no cover - fail loud
                with lock:
                    errors.append(f"writer: {error!r}")
            finally:
                writer_done.set()

        def reader(identity: int) -> None:
            rounds = 0
            try:
                while rounds < MIN_READS or not writer_done.is_set():
                    snapshot = store.snapshot("boe")
                    version = snapshot.version
                    reference = expected.get(version)
                    if reference is None:
                        with lock:
                            errors.append(
                                f"reader {identity} saw unpublished "
                                f"version {version}")
                        return
                    for probe in PROBES:
                        observed = snapshot.query(probe).serialize()
                        if observed != reference[probe]:
                            with lock:
                                errors.append(
                                    f"reader {identity} tore at "
                                    f"v{version} on {probe!r}")
                            return
                    # the pinned snapshot never moves underneath us
                    if snapshot.version != version:
                        with lock:
                            errors.append(
                                f"reader {identity}: snapshot version "
                                f"drifted")
                        return
                    with lock:
                        observations.append((identity, version))
                    rounds += 1
            except Exception as error:  # pragma: no cover - fail loud
                with lock:
                    errors.append(f"reader {identity}: {error!r}")

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader, args=(identity,))
                    for identity in range(READERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert writer_done.is_set()
        # every reader completed its quota, and the final version is
        # the replay's final version
        per_reader = {identity for identity, _version in observations}
        assert per_reader == set(range(READERS))
        final = store.snapshot("boe")
        assert final.version == max(expected)
        for probe in PROBES:
            assert final.query(probe).serialize() == \
                expected[final.version][probe]
        final.engine.goddag.check_invariants()

    def test_analyze_string_readers_share_one_snapshot(self, tmp_path):
        """Definition 4 temporaries mutate membership; the snapshot
        latch must serialize them against plain readers on the *same*
        snapshot without corrupting either."""
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        snapshot = store.snapshot("boe")
        plain = "count(/descendant::*)"
        analyze = 'analyze-string(/, "si")'
        expected_plain = snapshot.query(plain).serialize()
        expected_analyze = snapshot.query(analyze).serialize()

        errors: list[str] = []
        lock = threading.Lock()

        def worker(identity: int) -> None:
            try:
                for _round in range(MIN_READS):
                    if identity % 2:
                        observed = snapshot.query(analyze).serialize()
                        reference = expected_analyze
                    else:
                        observed = snapshot.query(plain).serialize()
                        reference = expected_plain
                    if observed != reference:
                        with lock:
                            errors.append(
                                f"worker {identity} diverged")
                        return
            except Exception as error:  # pragma: no cover - fail loud
                with lock:
                    errors.append(f"worker {identity}: {error!r}")

        threads = [threading.Thread(target=worker, args=(identity,))
                   for identity in range(max(READERS, 4))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        snapshot.engine.goddag.check_invariants()

    def test_latch_guards_direct_engine_queries_too(self, tmp_path):
        """``snapshot.engine.query(...)`` bypasses the Snapshot wrapper
        but not the latch — it lives on the frozen goddag, so direct
        analyze-string calls racing plain readers stay serialized."""
        store = DocumentStore.init(tmp_path / "catalog")
        store.add("boe", boethius_document(validate=False))
        engine = store.snapshot("boe").engine
        plain = "count(/descendant::*)"
        analyze = 'analyze-string(/, "si")'
        expected_plain = engine.query(plain).serialize()
        expected_analyze = engine.query(analyze).serialize()

        errors: list[str] = []
        lock = threading.Lock()

        def worker(identity: int) -> None:
            try:
                for _round in range(MIN_READS):
                    text = analyze if identity % 2 else plain
                    reference = (expected_analyze if identity % 2
                                 else expected_plain)
                    if engine.query(text).serialize() != reference:
                        with lock:
                            errors.append(f"worker {identity} diverged")
                        return
            except Exception as error:  # pragma: no cover - fail loud
                with lock:
                    errors.append(f"worker {identity}: {error!r}")

        threads = [threading.Thread(target=worker, args=(identity,))
                   for identity in range(max(READERS, 4))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        engine.goddag.check_invariants()
