"""Tests for the Engine facade and .mhx container IO."""

from __future__ import annotations

import json

import pytest

from repro import Engine, QueryOptions, ReproError, load_mhx, save_mhx
from repro.corpus.boethius import BASE_TEXT, DTD_SOURCES, ENCODINGS


@pytest.fixture()
def engine() -> Engine:
    return Engine.from_xml(BASE_TEXT, ENCODINGS)


class TestEngine:
    def test_query(self, engine):
        result = engine.query("count(/descendant::w)")
        assert result.serialize() == "6"

    def test_xpath(self, engine):
        result = engine.xpath("/descendant::w[1]")
        assert result.strings() == ["<w>gesceaftum</w>"]

    def test_xpath_rejects_flwor(self, engine):
        from repro.errors import QuerySyntaxError

        with pytest.raises(QuerySyntaxError):
            engine.xpath("for $x in //w return $x")

    def test_compile_execute(self, engine):
        compiled = engine.compile("count(/descendant::w) + $extra")
        result = engine.execute(compiled, variables={"extra": [1]})
        assert result.serialize() == "7"
        assert engine.execute(compiled,
                              variables={"extra": [10]}).serialize() == "16"

    def test_result_protocols(self, engine):
        result = engine.query("1, 2, 3")
        assert len(result) == 3
        assert list(result) == [1, 2, 3]
        assert result[0] == 1

    def test_serialize_modes(self, engine):
        result = engine.query("'a', 'b'")
        assert result.serialize() == "ab"
        assert result.serialize(mode="xquery") == "a b"

    def test_stats_and_describe(self, engine):
        rows = dict(engine.stats().rows())
        assert rows["leaves"] == "16"
        assert "hierarchy physical" in rows
        assert "KyGODDAG over 51 characters" in engine.describe()

    def test_to_dot(self, engine):
        dot = engine.to_dot()
        assert dot.startswith("digraph")
        assert "cluster_physical" in dot

    def test_options_threaded(self):
        engine = Engine.from_xml(
            BASE_TEXT, ENCODINGS,
            options=QueryOptions(analyze_strip_dotstar=False))
        out = engine.query(
            'analyze-string(/descendant::w[2], ".*unawe.*")')
        assert out.serialize() == "<res><m>unawendendne</m></res>"


class TestMhxContainer:
    def test_round_trip(self, engine, tmp_path):
        path = tmp_path / "boethius.mhx"
        engine.save_mhx(path)
        loaded = Engine.from_mhx(path)
        assert loaded.query("count(/descendant::w)").serialize() == "6"
        assert loaded.document.text == BASE_TEXT

    def test_container_is_json(self, engine, tmp_path):
        path = tmp_path / "doc.mhx"
        engine.save_mhx(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format"] == "mhx-1"
        assert set(payload["hierarchies"]) == set(ENCODINGS)

    def test_dtds_validated_on_load(self, tmp_path):
        path = tmp_path / "doc.mhx"
        payload = {
            "format": "mhx-1",
            "text": BASE_TEXT,
            "hierarchies": dict(ENCODINGS),
            "dtds": dict(DTD_SOURCES),
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        document = load_mhx(path)
        assert document.cmh is not None

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "doc.mhx"
        path.write_text('{"format": "other"}', encoding="utf-8")
        with pytest.raises(ReproError, match="not an mhx-1"):
            load_mhx(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_mhx(tmp_path / "missing.mhx")

    def test_save_mhx_function(self, engine, tmp_path):
        path = tmp_path / "direct.mhx"
        save_mhx(engine.document, path)
        assert load_mhx(path).text == BASE_TEXT

    def test_dtds_round_trip(self, tmp_path):
        """An attached CMH survives save → load (ISSUE 2 satellite).

        ``save_mhx`` used to drop the ``dtds`` key silently, so a
        schema-carrying document lost its CMH on the way through the
        container.
        """
        from repro.cmh import ConcurrentMarkupHierarchy

        engine = Engine.from_xml(BASE_TEXT, ENCODINGS)
        cmh = ConcurrentMarkupHierarchy.from_sources("r", DTD_SOURCES)
        engine.document.attach_cmh(cmh)
        path = tmp_path / "schema.mhx"
        engine.save_mhx(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert set(payload["dtds"]) == set(DTD_SOURCES)
        loaded = load_mhx(path)
        assert loaded.cmh is not None
        assert set(loaded.cmh.hierarchy_names) == set(DTD_SOURCES)
        # and a second round trip is stable
        second = tmp_path / "schema2.mhx"
        save_mhx(loaded, second)
        assert json.loads(second.read_text(encoding="utf-8"))["dtds"] \
            == payload["dtds"]

    def test_sourceless_cmh_skips_dtds_key(self, tmp_path):
        """A programmatic CMH (no DTD sources) cannot be bundled; the
        container simply omits the key instead of failing."""
        from repro.cmh import ConcurrentMarkupHierarchy
        from repro.markup.dtd import parse_dtd

        engine = Engine.from_xml(BASE_TEXT, ENCODINGS)
        dtds = {name: parse_dtd(text)
                for name, text in DTD_SOURCES.items()}
        for dtd in dtds.values():
            dtd.source = None  # simulate programmatic construction
        engine.document.attach_cmh(
            ConcurrentMarkupHierarchy("r", dtds))
        path = tmp_path / "nosrc.mhx"
        engine.save_mhx(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert "dtds" not in payload
