"""Tests for the concurrent document store (DESIGN.md §10).

Catalog lifecycle, MVCC snapshot semantics (old snapshots keep their
version; batches are all-or-nothing), the cross-document compiled-plan
cache, on-disk persistence across store reopens, and the ``mhxq
store`` CLI verbs.
"""

from __future__ import annotations

import pytest

from repro.api import Engine
from repro.cli import main
from repro.errors import GoddagError, ReproError
from repro.cmh import MultihierarchicalDocument
from repro.corpus.boethius import boethius_document
from repro.store import DocumentStore, fork_engine


@pytest.fixture()
def store(tmp_path) -> DocumentStore:
    return DocumentStore.init(tmp_path / "catalog")


@pytest.fixture()
def seeded(store) -> DocumentStore:
    store.add("boe", boethius_document(validate=False))
    return store


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCatalog:
    def test_init_refuses_to_clobber(self, tmp_path):
        DocumentStore.init(tmp_path / "cat")
        with pytest.raises(ReproError, match="already holds"):
            DocumentStore.init(tmp_path / "cat")

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(ReproError, match="store init"):
            DocumentStore(tmp_path / "nowhere")

    def test_add_and_query(self, seeded):
        assert "boe" in seeded
        assert seeded.names == ["boe"]
        assert seeded.query(
            "boe", "count(/descendant::w)").serialize() == "6"

    def test_add_validates_names(self, store):
        with pytest.raises(ReproError, match="invalid document name"):
            store.add("../escape", boethius_document(validate=False))

    def test_add_rejects_duplicates(self, seeded):
        with pytest.raises(ReproError, match="already exists"):
            seeded.add("boe", boethius_document(validate=False))

    def test_add_clones_the_caller_document(self, store):
        document = boethius_document(validate=False)
        store.add("boe", document)
        # mutating the caller's document cannot reach the store
        document.text = "clobbered"
        assert store.query(
            "boe", "count(/descendant::w)").serialize() == "6"

    def test_add_from_engine_and_path(self, store, tmp_path):
        engine = Engine(boethius_document(validate=False))
        engine.update('rename node /descendant::w[1] as "word"')
        store.add("from-engine", engine=engine)
        assert store.query(
            "from-engine", "count(//word)").serialize() == "1"
        # the source engine stays mutable (the store forked it)
        engine.update('rename node /descendant::word[1] as "w"')

        mhx = tmp_path / "doc.mhx"
        engine.save_mhx(mhx)
        store.add("from-mhx", path=mhx)
        mhxb = tmp_path / "doc.mhxb"
        engine.save_mhxb(mhxb)
        store.add("from-mhxb", path=mhxb)
        for name in ("from-mhx", "from-mhxb"):
            assert store.query(
                name, "count(/descendant::w)").serialize() == "6"

    def test_remove(self, seeded):
        seeded.remove("boe")
        assert "boe" not in seeded
        with pytest.raises(ReproError, match="no document"):
            seeded.snapshot("boe")
        with pytest.raises(ReproError, match="no document"):
            seeded.remove("boe")


class TestSnapshots:
    def test_snapshot_pins_its_version(self, seeded):
        old = seeded.snapshot("boe")
        seeded.update("boe",
                      'rename node /descendant::w[1] as "word"')
        new = seeded.snapshot("boe")
        assert new.version > old.version
        assert old.query("count(//word)").serialize() == "0"
        assert new.query("count(//word)").serialize() == "1"
        # the old snapshot is stable under repeated reads
        assert old.query("count(//word)").serialize() == "0"

    def test_snapshot_engines_are_frozen(self, seeded):
        snapshot = seeded.snapshot("boe")
        with pytest.raises(GoddagError, match="frozen snapshot"):
            snapshot.engine.update(
                'rename node /descendant::w[1] as "x"')

    def test_batch_is_all_or_nothing(self, seeded):
        seeded.update("boe", 'rename node /descendant::w[1] as "word"')
        version = seeded.snapshot("boe").version
        with pytest.raises(ReproError):
            seeded.update("boe", [
                'rename node /descendant::word[1] as "gone"',
                # one statement with two conflicting renames: rejected
                'rename node /descendant::w[1] as "a", '
                'rename node /descendant::w[1] as "b"',
            ])
        snapshot = seeded.snapshot("boe")
        assert snapshot.version == version
        assert seeded.query("boe", "count(//word)").serialize() == "1"
        assert seeded.query("boe", "count(//gone)").serialize() == "0"
        snapshot.engine.goddag.check_invariants()

    def test_batch_statements_compose_sequentially(self, seeded):
        results = seeded.update("boe", [
            'rename node /descendant::w[1] as "word"',
            'insert node <note>n</note> after /descendant::word[1]',
        ])
        assert len(results) == 2
        assert seeded.query("boe", "//note/string(.)").serialize() == "n"

    def test_empty_batch_rejected(self, seeded):
        with pytest.raises(ReproError, match="at least one"):
            seeded.update("boe", [])

    def test_analyze_string_on_snapshot(self, seeded):
        snapshot = seeded.snapshot("boe")
        expected = Engine(boethius_document(validate=False)).query(
            'analyze-string(/, "si")').serialize()
        assert snapshot.query(
            'analyze-string(/, "si")').serialize() == expected
        snapshot.engine.goddag.check_invariants()

    def test_snapshot_explain(self, seeded):
        report = seeded.snapshot("boe").explain("count(//w)")
        assert "plan:" in report


class TestPlanCache:
    def test_plans_shared_across_documents(self, seeded):
        seeded.add("boe2", boethius_document(validate=False))
        query = "count(/descendant::w[xfollowing::cb])"
        first = seeded.query("boe", query)
        second = seeded.query("boe2", query)
        assert first.stats.plan_cache_hit is False
        assert second.stats.plan_cache_hit is True
        assert first.serialize() == second.serialize()
        assert seeded.plans.hits >= 1
        assert seeded.plans.misses >= 1

    def test_plans_survive_updates(self, seeded):
        query = "count(/descendant::w)"
        seeded.query("boe", query)
        # an update that leaves the statistics fingerprint unchanged
        # (renaming a name that matches nothing) keeps hitting the
        # shared cache across snapshots
        seeded.update("boe", 'rename node /descendant::cb[1] as "cbx"')
        assert seeded.query("boe", query).stats.plan_cache_hit is True

    def test_cardinality_shift_orphans_plans(self, seeded):
        query = "count(/descendant::w)"
        seeded.query("boe", query)
        # a cardinality-shifting update changes the stats fingerprint,
        # so the stale costed plan is never served again (DESIGN.md
        # §16) — the recompile misses, then the new plan is reused
        seeded.update("boe", 'rename node /descendant::dmg[1] as "gap"')
        assert seeded.query("boe", query).stats.plan_cache_hit is False
        assert seeded.query("boe", query).stats.plan_cache_hit is True

    def test_cache_eviction(self, seeded):
        seeded.plans.capacity = 2
        for index in range(4):
            seeded.query("boe", f"count(/descendant::w) + {index}")
        assert len(seeded.plans) <= 2


class TestPersistence:
    def test_reopen_restores_catalog_and_versions(self, tmp_path):
        root = tmp_path / "catalog"
        store = DocumentStore.init(root)
        store.add("boe", boethius_document(validate=False))
        store.update("boe", 'rename node /descendant::w[1] as "word"')
        version = store.snapshot("boe").version

        reopened = DocumentStore(root)
        assert reopened.names == ["boe"]
        snapshot = reopened.snapshot("boe")
        assert snapshot.version == version
        assert reopened.query("boe", "count(//word)").serialize() == "1"
        snapshot.engine.goddag.check_invariants()

    def test_unpersisted_updates_stay_in_memory_until_compact(
            self, tmp_path):
        root = tmp_path / "catalog"
        store = DocumentStore.init(root)
        store.add("boe", boethius_document(validate=False))
        store.update("boe", 'rename node /descendant::w[1] as "word"',
                     persist=False)
        assert store.query("boe", "count(//word)").serialize() == "1"
        # a second store (fresh process, say) sees the old version
        assert DocumentStore(root).query(
            "boe", "count(//word)").serialize() == "0"
        store.compact("boe")
        assert DocumentStore(root).query(
            "boe", "count(//word)").serialize() == "1"

    def test_compact_is_idempotent_and_byte_stable(self, tmp_path):
        root = tmp_path / "catalog"
        store = DocumentStore.init(root)
        store.add("boe", boethius_document(validate=False))
        store.update("boe", 'rename node /descendant::w[1] as "word"')
        path = root / "boe.mhxb"
        first = path.read_bytes()
        store.compact()
        assert path.read_bytes() == first

    def test_fork_engine_preserves_version_and_results(self):
        engine = Engine(boethius_document(validate=False))
        engine.update('rename node /descendant::w[1] as "word"')
        fork = fork_engine(engine)
        assert fork.version == engine.version
        assert fork.query("count(//word)").serialize() == "1"
        fork.update('rename node /descendant::word[1] as "w"')
        # the original is untouched by mutations of the fork
        assert engine.query("count(//word)").serialize() == "1"


class TestStoreCli:
    def test_full_cli_lifecycle(self, capsys, tmp_path):
        root = str(tmp_path / "catalog")
        code, out, _ = run_cli(capsys, "store", "init", root)
        assert code == 0 and "initialized" in out
        code, out, _ = run_cli(capsys, "store", "add", root, "boe",
                               "--sample")
        assert code == 0 and "version 4" in out
        code, out, _ = run_cli(capsys, "store", "query", root, "boe",
                               "count(/descendant::w)")
        assert code == 0 and out.strip() == "6"
        code, out, _ = run_cli(
            capsys, "store", "update", root, "boe",
            'rename node /descendant::w[1] as "word"')
        assert code == 0 and "applied 1 primitives" in out
        code, out, _ = run_cli(capsys, "store", "query", root, "boe",
                               "count(//word)")
        assert out.strip() == "1"
        code, out, _ = run_cli(capsys, "store", "get", root)
        assert code == 0 and "boe" in out
        code, out, _ = run_cli(capsys, "store", "get", root, "boe")
        assert "version 5" in out and "hierarchies" in out
        export = str(tmp_path / "export.mhxb")
        code, out, _ = run_cli(capsys, "store", "get", root, "boe",
                               "--out", export)
        assert code == 0
        assert Engine.from_mhxb(export).query(
            "count(//word)").serialize() == "1"
        code, out, _ = run_cli(capsys, "store", "compact", root)
        assert code == 0 and "compacted" in out

    def test_cli_errors_are_clean(self, capsys, tmp_path):
        root = str(tmp_path / "catalog")
        code, _, err = run_cli(capsys, "store", "query", root, "x", "1")
        assert code == 1 and "store init" in err
        run_cli(capsys, "store", "init", root)
        code, _, err = run_cli(capsys, "store", "query", root, "x", "1")
        assert code == 1 and "no document" in err
        code, _, err = run_cli(capsys, "store", "add", root, "x")
        assert code == 1 and "--mhx FILE, --sample, or --streaming" in err

    def test_pack_mhxb_and_query_it(self, capsys, tmp_path,
                                    base_text, encodings):
        text_file = tmp_path / "base.txt"
        text_file.write_text(base_text, encoding="utf-8")
        sources = []
        for name, xml in encodings.items():
            xml_file = tmp_path / f"{name}.xml"
            xml_file.write_text(xml, encoding="utf-8")
            sources.append(f"{name}={xml_file}")
        packed = str(tmp_path / "packed.mhxb")
        code, out, _ = run_cli(capsys, "pack", packed, "--text",
                               str(text_file), *sources)
        assert code == 0 and "binary .mhxb" in out
        code, out, _ = run_cli(capsys, "query", "--mhx", packed,
                               "count(/descendant::w)")
        assert code == 0 and out.strip() == "6"
