"""Tests for the analyze-string flags extension (3rd argument)."""

from __future__ import annotations

import pytest

from repro.errors import FunctionError
from repro.core.runtime import evaluate_query, serialize_items


def run_str(goddag, query):
    return serialize_items(evaluate_query(goddag, query))


class TestFlags:
    def test_case_insensitive(self, goddag):
        out = run_str(goddag,
                      'analyze-string(/descendant::w[2], "UNAWE", "i")')
        assert out == "<res><m>unawe</m>ndendne</res>"

    def test_without_flag_no_match(self, goddag):
        out = run_str(goddag,
                      'analyze-string(/descendant::w[2], "UNAWE")')
        assert out == "<res>unawendendne</res>"

    def test_verbose_flag(self, goddag):
        out = run_str(
            goddag,
            'analyze-string(/descendant::w[2], "un awe", "x")')
        assert out == "<res><m>unawe</m>ndendne</res>"

    def test_flags_combine(self, goddag):
        out = run_str(
            goddag,
            'analyze-string(/descendant::w[2], "UN AWE", "ix")')
        assert out == "<res><m>unawe</m>ndendne</res>"

    def test_bad_flag_rejected(self, goddag):
        with pytest.raises(FunctionError, match="unsupported regex flag"):
            evaluate_query(
                goddag, 'analyze-string(/descendant::w[2], "x", "q")')

    def test_flags_with_fragment_pattern(self, goddag):
        out = run_str(
            goddag,
            'analyze-string(/descendant::w[2], "UN<a>A</a>WE", "i")')
        assert out == "<res><m>un<a>a</a>we</m>ndendne</res>"

    def test_dotall_flag_accepted(self, goddag):
        # The Boethius text has no newline; 's' must still be legal.
        out = run_str(goddag,
                      'analyze-string(/descendant::w[2], "n.w", "s")')
        assert out == "<res>u<m>naw</m>endendne</res>"
