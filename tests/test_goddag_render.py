"""Tests for KyGODDAG rendering: XML per hierarchy, DOT, outline."""

from __future__ import annotations

import pytest

from repro.core.goddag import describe, serialize_node, to_dot
from repro.core.goddag.nodes import GElement
from repro.corpus.boethius import ENCODINGS


class TestSerializeNode:
    def test_hierarchy_round_trip(self, goddag):
        for name, source in ENCODINGS.items():
            assert serialize_node(goddag.root, name) == source

    def test_element_subtree(self, goddag):
        dmg = next(goddag.elements("dmg"))
        assert serialize_node(dmg) == "<dmg>w</dmg>"

    def test_text_node_escaped(self, goddag):
        text = next(n for n in goddag.nodes_of("physical")
                    if n.kind == "text")
        assert serialize_node(text) == "gesceaftum unawendendne sin"

    def test_leaf(self, goddag):
        assert serialize_node(goddag.partition.leaf_at(14)) == "w"

    def test_root_requires_hierarchy(self, goddag):
        with pytest.raises(ValueError, match="hierarchy"):
            serialize_node(goddag.root)

    def test_attributes_rendered(self):
        from repro.cmh import MultihierarchicalDocument
        from repro.core.goddag import KyGoddag

        document = MultihierarchicalDocument.from_xml(
            "ab", {"h": '<r><x n="1">ab</x></r>'})
        goddag = KyGoddag.build(document)
        x = next(goddag.elements("x"))
        assert serialize_node(x) == '<x n="1">ab</x>'


class TestDot:
    def test_structure(self, goddag):
        dot = to_dot(goddag)
        assert dot.startswith("digraph kygoddag {")
        assert dot.rstrip().endswith("}")
        for name in goddag.hierarchy_names:
            assert f"cluster_{name}" in dot

    def test_figure_2_labels(self, goddag):
        dot = to_dot(goddag)
        for label in ("line1", "line2", "vline3", "w6", "res3", "dmg2",
                      "t1", "t22"):
            assert f'label="{label}"' in dot

    def test_leaf_boxes_numbered(self, goddag):
        dot = to_dot(goddag)
        assert 'label="16" shape=box' in dot.replace("  ", " ")

    def test_edge_count_matches_stats(self, goddag):
        from repro.core.goddag import collect

        dot = to_dot(goddag)
        arrow_count = dot.count(" -> ")
        assert arrow_count == collect(goddag).edge_count


class TestDescribe:
    def test_header(self, goddag):
        text = describe(goddag)
        assert text.splitlines()[0] == (
            "KyGODDAG over 51 characters, 4 hierarchies, 16 leaves")

    def test_all_hierarchies_listed(self, goddag):
        text = describe(goddag)
        for name in goddag.hierarchy_names:
            assert f"hierarchy {name}:" in text

    def test_leaves_listed_with_spans(self, goddag):
        text = describe(goddag)
        assert "  4: [14,15) 'w'" in text

    def test_temporary_flag_shown(self, goddag):
        from repro.cmh.spans import Span, SpanSet

        spans = SpanSet(goddag.text, [Span(0, 5, "x")])
        goddag.add_hierarchy_from_spans("tmp", spans, temporary=True)
        assert "hierarchy tmp (temporary):" in describe(goddag)

    def test_nesting_depth_indent(self, goddag):
        text = describe(goddag)
        # w nodes are nested under vline: indented two levels.
        assert "\n    w1 [0,10)" in text


class TestStatsRows:
    def test_rows_cover_all_hierarchies(self, goddag):
        from repro.core.goddag import collect

        rows = dict(collect(goddag).rows())
        assert rows["total nodes"] == "55"
        assert rows["total edges"] == "102"
        assert "elements[dmg:2]" in rows["hierarchy damage"]

    def test_counts_with_comments_and_pis(self):
        from repro.cmh import MultihierarchicalDocument
        from repro.core.goddag import KyGoddag, collect

        document = MultihierarchicalDocument.from_xml(
            "ab", {"h": "<r><!--c--><?p d?>ab</r>"})
        stats = collect(KyGoddag.build(document))
        hierarchy = stats.hierarchies[0]
        assert hierarchy.comments == 1
        assert hierarchy.processing_instructions == 1
