"""Tests for the scatter-gather plan classifier (DESIGN.md §13).

The classifier is pure static analysis over the logical plan, so each
case is: compile the query text, classify, assert the routing verdict
(and, for fused fallbacks, that the reason names the actual blocker —
the reasons surface in ``cquery``'s execution stats and in debugging).
"""

from __future__ import annotations

import pytest

from repro.core.plan import compile_query
from repro.core.plan.distribute import (
    Distribution,
    classify,
    find_collections,
)

#: The corpus statistics shape of the synthetic manuscripts: ``w`` only
#: in the structural hierarchy, ``line`` only in the physical one.
NAME_HIERARCHIES = {
    "w": ["structural"], "vline": ["structural"],
    "line": ["physical"], "page": ["physical"],
    "dmg": ["damage"], "res": ["restoration"],
    "shared": ["damage", "restoration"],
}


def verdict(text: str) -> Distribution:
    compiled = compile_query(text)
    return classify(compiled.plan, root_name="r",
                    name_hierarchies=NAME_HIERARCHIES)


class TestFindCollections:
    def test_finds_nested_references(self):
        compiled = compile_query(
            'for $w in collection("a")/descendant::w '
            'return collection("b")/descendant::line')
        assert sorted(find_collections(compiled.plan)) == ["a", "b"]

    def test_none_without_collection(self):
        compiled = compile_query("/descendant::w")
        assert find_collections(compiled.plan) == []


class TestScatter:
    @pytest.mark.parametrize("text", [
        'collection("c")/descendant::w',
        'collection("c")/child::vline/child::w',
        'collection("c")/descendant::w/ancestor::vline',
        'collection("c")/descendant::dmg/xdescendant::w',
        'collection("c")/descendant::w/overlapping::line',
        'collection("c")/descendant::w[overlapping::dmg]',
        'collection("c")/descendant::vline/child::w[1]',
        'collection("c")/descendant::w/attribute::id',
    ])
    def test_scatterable(self, text):
        result = verdict(text)
        assert result.mode == "scatter", result.reason
        assert result.collection == "c"

    def test_required_names_spine_and_semi_joins(self):
        result = verdict(
            'collection("c")/descendant::vline/child::w'
            '[overlapping::dmg]')
        assert result.mode == "scatter"
        assert result.required_names == ["vline", "w", "dmg"]


class TestAggregate:
    @pytest.mark.parametrize("function,fold", [
        ("count", "count"), ("exists", "exists"), ("empty", "empty"),
    ])
    def test_aggregates_fold(self, function, fold):
        result = verdict(f'{function}(collection("c")/descendant::w)')
        assert result.mode == "aggregate"
        assert result.aggregate == fold
        assert result.required_names == ["w"]

    def test_aggregate_over_non_scatterable_path_fuses(self):
        result = verdict(
            'count(collection("c")/descendant::w/following::w)')
        assert result.mode == "fused"
        assert "following" in result.reason


class TestConcat:
    def test_single_hierarchy_flwor_concats(self):
        result = verdict('for $w in collection("c")/descendant::w '
                         'return string($w)')
        assert result.mode == "concat"
        assert result.required_names == ["w"]

    def test_where_and_let_clauses_stay_local(self):
        result = verdict(
            'for $w in collection("c")/descendant::w '
            'let $s := string($w) '
            'where exists($w/overlapping::line) return $s')
        assert result.mode == "concat"

    def test_multi_hierarchy_name_fuses(self):
        result = verdict('for $n in collection("c")/descendant::shared '
                         'return string($n)')
        assert result.mode == "fused"
        assert "2 hierarchies" in result.reason

    def test_positional_binding_fuses(self):
        result = verdict(
            'for $w at $i in collection("c")/descendant::w '
            'return $i')
        assert result.mode == "fused"
        assert "positional" in result.reason


class TestFused:
    @pytest.mark.parametrize("text,fragment", [
        # cross-shard axes
        ('collection("c")/descendant::w/following::w', "following"),
        ('collection("c")/descendant::w/preceding-sibling::w',
         "preceding-sibling"),
        ('collection("c")/descendant::dmg/xfollowing::res',
         "xfollowing"),
        ('collection("c")/descendant::w[xpreceding::dmg]',
         "xpreceding"),
        # shard roots and split text leak local state
        ('collection("c")', "top-level"),
        # a corpus-global position, not a per-parent one
        ('collection("c")/descendant::w[2]', "positional"),
        ('collection("c")/descendant::r', "corpus root"),
        ('collection("c")/ancestor-or-self::*', "wildcard"),
        ('collection("c")/descendant::text()', "text()"),
        # focus against the corpus-root context
        ('collection("c")/descendant::w[position() > 2]',
         "position()"),
        # nested/multiple collections
        ('for $w in collection("a")/descendant::w '
         'return collection("b")/descendant::line',
         "2 collection() references"),
        # non-path top level
        ('string(collection("c")/descendant::w)', "top-level"),
    ])
    def test_fused_with_reason(self, text, fragment):
        result = verdict(text)
        assert result.mode == "fused", result.mode
        assert fragment in result.reason, result.reason

    def test_downward_wildcard_stays_scatterable(self):
        assert verdict('collection("c")/descendant::w/child::*'
                       ).mode == "scatter"

    def test_node_test_mid_chain_screened_by_downward_step(self):
        # the // expansion: descendant-or-self::node()/child::w
        result = verdict('collection("c")'
                         '/descendant-or-self::node()/child::w')
        assert result.mode == "scatter", result.reason
