"""The tier-1 test suite.

A real package so test module names are ``tests.<name>`` — letting a
benchmark module (``benchmarks/test_extended_axis_joins.py``) share a
basename with its tier-1 counterpart without colliding in pytest's
module registry.  Shared hypothesis strategies live in
:mod:`tests.strategies`.
"""
