"""Tests for KyGODDAG construction, the leaf partition, and node order."""

from __future__ import annotations

import pytest

from repro.errors import GoddagError
from repro.cmh.spans import Span, SpanSet
from repro.core.goddag import KyGoddag
from repro.core.goddag.nodes import GElement, GLeaf, GText

#: The 16 leaves of the paper's Figure 2 (hand-derived from Figure 1).
FIGURE_2_LEAVES = [
    "gesceaftum", " ", "una", "w", "endendne", " ", "s", "in",
    "gallice", " ", "sibbe", " ", "gecyn", "de", " ", "ϸa",
]


class TestBuild:
    def test_leaf_partition_matches_figure_2(self, goddag):
        assert [leaf.text for leaf in goddag.leaves()] == FIGURE_2_LEAVES

    def test_leaves_concatenate_to_base_text(self, goddag):
        assert "".join(l.text for l in goddag.leaves()) == goddag.text

    def test_hierarchy_names_in_order(self, goddag):
        assert goddag.hierarchy_names == [
            "physical", "structural", "restoration", "damage"]

    def test_element_spans(self, goddag):
        lines = [n for n in goddag.elements("line")]
        assert [(n.start, n.end) for n in lines] == [(0, 27), (27, 51)]
        dmg = [n for n in goddag.elements("dmg")]
        assert [(n.start, n.end) for n in dmg] == [(14, 15), (46, 51)]

    def test_root_spans_whole_text(self, goddag):
        assert (goddag.root.start, goddag.root.end) == (0, 51)

    def test_root_children_per_hierarchy(self, goddag):
        physical = goddag.root.children_in("physical")
        assert [n.name for n in physical] == ["line", "line"]
        assert len(goddag.root.all_children) > 4

    def test_text_nodes_have_parents(self, goddag):
        for name in goddag.hierarchy_names:
            for node in goddag.nodes_of(name):
                assert node.parent is not None

    def test_preorder_subtree_invariant(self, goddag):
        for name in goddag.hierarchy_names:
            for node in goddag.nodes_of(name):
                assert node.preorder <= node.subtree_end
                if isinstance(node, GElement):
                    for child in node.children:
                        assert node.preorder < child.preorder
                        assert child.subtree_end <= node.subtree_end

    def test_duplicate_hierarchy_rejected(self, boethius_doc):
        goddag = KyGoddag.build(boethius_doc)
        with pytest.raises(GoddagError, match="duplicate"):
            goddag.add_hierarchy_from_dom(
                "physical", boethius_doc["physical"].document)

    def test_wrong_root_rejected(self, goddag):
        from repro.markup import parse

        wrong = parse(f"<other>{goddag.text}</other>")
        with pytest.raises(GoddagError, match="root element"):
            goddag.add_hierarchy_from_dom("extra", wrong)

    def test_string_values(self, goddag):
        word = next(goddag.elements("w"))
        assert word.string_value() == "gesceaftum"
        assert goddag.string_value(goddag.root) == goddag.text


class TestLeafAccess:
    def test_leaf_at(self, goddag):
        assert goddag.partition.leaf_at(0).text == "gesceaftum"
        assert goddag.partition.leaf_at(14).text == "w"
        assert goddag.partition.leaf_at(50).text == "ϸa"

    def test_leaf_at_out_of_range(self, goddag):
        with pytest.raises(GoddagError):
            goddag.partition.leaf_at(51)
        with pytest.raises(GoddagError):
            goddag.partition.leaf_at(-1)

    def test_leaf_identity_is_canonical(self, goddag):
        assert goddag.partition.leaf_at(0) is goddag.partition.leaf_at(5)

    def test_leaves_of_element(self, goddag):
        word = [w for w in goddag.elements("w")
                if w.string_value() == "unawendendne"][0]
        assert [l.text for l in goddag.leaves_of(word)] == [
            "una", "w", "endendne"]

    def test_leaves_of_leaf_is_itself(self, goddag):
        leaf = goddag.partition.leaf_at(0)
        assert goddag.leaves_of(leaf) == [leaf]

    def test_text_parents_of_leaf(self, goddag):
        leaf = goddag.partition.leaf_at(14)  # "w" — inside dmg1
        parents = goddag.text_parents_of_leaf(leaf)
        assert len(parents) == 4  # one text node per hierarchy
        assert all(isinstance(p, GText) for p in parents)
        assert all(p.start <= 14 < p.end for p in parents)

    def test_leaves_in_subrange(self, goddag):
        leaves = goddag.partition.leaves_in(11, 23)  # unawendendne
        assert [l.text for l in leaves] == ["una", "w", "endendne"]


class TestNodeOrder:
    def test_root_first(self, goddag):
        keys = [goddag.order_key(n) for n in goddag.iter_nodes()]
        assert keys[0] == goddag.order_key(goddag.root)
        assert keys == sorted(keys)

    def test_order_total_and_unique(self, goddag):
        nodes = list(goddag.iter_nodes(include_attributes=True))
        keys = [goddag.order_key(n) for n in nodes]
        assert len(set(keys)) == len(keys)

    def test_same_hierarchy_follows_dom_order(self, goddag):
        words = list(goddag.elements("w"))
        keys = [goddag.order_key(w) for w in words]
        assert keys == sorted(keys)

    def test_hierarchies_ordered_by_rank(self, goddag):
        line = next(goddag.elements("line"))
        word = next(goddag.elements("w"))
        assert goddag.order_key(line) < goddag.order_key(word)

    def test_leaves_after_hierarchy_nodes(self, goddag):
        leaf = goddag.partition.leaf_at(0)
        last_element = list(goddag.elements())[-1]
        assert goddag.order_key(leaf) > goddag.order_key(last_element)

    def test_sort_nodes_dedupes(self, goddag):
        word = next(goddag.elements("w"))
        assert goddag.sort_nodes([word, word, goddag.root]) == [
            goddag.root, word]


class TestTemporaryHierarchies:
    def test_add_and_remove_restores_partition(self, goddag):
        before = [l.text for l in goddag.leaves()]
        spans = SpanSet(goddag.text, [Span(11, 16, "m")])  # "unawe"
        goddag.add_hierarchy_from_spans("tmp", spans, temporary=True)
        after = [l.text for l in goddag.leaves()]
        assert "e" in after and after != before  # "endendne" split
        assert goddag.is_temporary("tmp")
        goddag.remove_hierarchy("tmp")
        assert [l.text for l in goddag.leaves()] == before
        assert not goddag.has_hierarchy("tmp")

    def test_partition_version_bumps(self, goddag):
        version = goddag.partition.version
        spans = SpanSet(goddag.text, [Span(0, 5, "x")])
        goddag.add_hierarchy_from_spans("tmp", spans, temporary=True)
        assert goddag.partition.version > version

    def test_remove_unknown_hierarchy(self, goddag):
        with pytest.raises(GoddagError, match="no hierarchy"):
            goddag.remove_hierarchy("ghost")

    def test_mismatched_span_text_rejected(self, goddag):
        spans = SpanSet("different text")
        with pytest.raises(GoddagError, match="differs"):
            goddag.add_hierarchy_from_spans("tmp", spans)

    def test_persistent_names_exclude_temporaries(self, goddag):
        spans = SpanSet(goddag.text, [Span(0, 5, "x")])
        goddag.add_hierarchy_from_spans("tmp", spans, temporary=True)
        assert "tmp" not in goddag.persistent_hierarchy_names
        assert "tmp" in goddag.hierarchy_names


class TestIteration:
    def test_iter_nodes_counts(self, goddag):
        nodes = list(goddag.iter_nodes())
        # 1 root + 55-node inventory (see stats tests) includes leaves.
        leaves = [n for n in nodes if isinstance(n, GLeaf)]
        assert len(leaves) == 16
        assert nodes[0] is goddag.root

    def test_elements_filter(self, goddag):
        assert len(list(goddag.elements("w"))) == 6
        assert len(list(goddag.elements())) == 16  # 2+3+6+3+2 elements

    def test_leaves_not_duplicated_across_hierarchies(self, goddag):
        nodes = list(goddag.iter_nodes())
        leaf_ids = [id(n) for n in nodes if isinstance(n, GLeaf)]
        assert len(leaf_ids) == len(set(leaf_ids))
