"""Tests for the span-list hierarchy representation."""

from __future__ import annotations

import pytest

from repro.errors import CMHError
from repro.cmh.spans import Span, SpanSet, spans_of
from repro.markup import parse, serialize


class TestSpanValidation:
    def test_negative_extent_rejected(self):
        with pytest.raises(CMHError, match="negative extent"):
            Span(5, 3, "a")

    def test_out_of_bounds_rejected(self):
        spans = SpanSet("abc")
        with pytest.raises(CMHError, match="exceeds"):
            spans.add(Span(0, 4, "a"))

    def test_proper_overlap_rejected(self):
        spans = SpanSet("abcdef")
        spans.add(Span(0, 4, "a"))
        with pytest.raises(CMHError, match="overlaps"):
            spans.add(Span(2, 6, "b"))

    def test_nesting_allowed(self):
        spans = SpanSet("abcdef")
        spans.add(Span(0, 6, "outer"))
        spans.add(Span(2, 4, "inner"))
        assert len(spans.spans) == 2

    def test_disjoint_allowed(self):
        spans = SpanSet("abcdef")
        spans.add(Span(0, 2, "a"))
        spans.add(Span(4, 6, "b"))
        assert len(spans.spans) == 2

    def test_zero_length_span_allowed(self):
        spans = SpanSet("abc")
        spans.add(Span(1, 1, "milestone"))
        doc = spans.to_document("r")
        assert serialize(doc) == "<r>a<milestone/>bc</r>"


class TestToDocument:
    def test_simple_tiling(self):
        spans = SpanSet("hello world", [Span(0, 5, "w"), Span(6, 11, "w")])
        doc = spans.to_document("r")
        assert serialize(doc) == "<r><w>hello</w> <w>world</w></r>"
        assert doc.root.text_content() == "hello world"

    def test_nested_structure(self):
        spans = SpanSet("abcdef", [
            Span(0, 6, "outer"), Span(1, 3, "inner"),
        ])
        assert serialize(spans.to_document("r")) == \
            "<r><outer>a<inner>bc</inner>def</outer></r>"

    def test_attributes_carried(self):
        spans = SpanSet("ab", [Span(0, 2, "w", (("n", "1"),))])
        assert serialize(spans.to_document("r")) == '<r><w n="1">ab</w></r>'

    def test_identical_extents_use_depth_hint(self):
        spans = SpanSet("ab", [
            Span(0, 2, "inner", depth_hint=1),
            Span(0, 2, "outer", depth_hint=0),
        ])
        assert serialize(spans.to_document("r")) == \
            "<r><outer><inner>ab</inner></outer></r>"

    def test_text_node_offsets_set(self):
        spans = SpanSet("hello world", [Span(0, 5, "w")])
        doc = spans.to_document("r")
        texts = list(doc.root.iter_text())
        assert [(t.start, t.end) for t in texts] == [(0, 5), (5, 11)]

    def test_empty_text(self):
        doc = SpanSet("").to_document("r")
        assert serialize(doc) == "<r/>"

    def test_span_covering_all(self):
        spans = SpanSet("xy", [Span(0, 2, "a")])
        assert serialize(spans.to_document("r")) == "<r><a>xy</a></r>"


class TestSpansOf:
    def test_round_trip(self):
        source = "<r><a>one<b>two</b></a> <c>three</c></r>"
        doc = parse(source)
        spans = spans_of(doc)
        rebuilt = SpanSet(doc.root.text_content(), spans).to_document("r")
        assert serialize(rebuilt) == source

    def test_extents(self):
        doc = parse("<r><a>ab<b>cd</b></a>ef</r>")
        extents = {(s.start, s.end, s.name) for s in spans_of(doc)}
        assert extents == {(0, 4, "a"), (2, 4, "b")}

    def test_include_root(self):
        doc = parse("<r>ab</r>")
        spans = spans_of(doc, include_root=True)
        assert [(s.start, s.end, s.name) for s in spans] == [(0, 2, "r")]

    def test_empty_element_zero_span(self):
        doc = parse("<r>a<pb/>b</r>")
        spans = spans_of(doc)
        assert [(s.start, s.end, s.name) for s in spans] == [(1, 1, "pb")]
