"""Tests for the ``.mhxb`` binary container (DESIGN.md §10).

Round-trip fidelity (byte-identical re-serialization, identical query
results against the ``.mhx`` JSON path), cold-load reconstruction
invariants, lazy DOM materialization, and the wrong-format error
behavior of both loaders.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Engine, load_mhx, save_mhx
from repro.errors import GoddagError, ReproError
from repro.cmh import MultihierarchicalDocument
from repro.corpus.boethius import boethius_document
from repro.store.mhxb import (
    MAGIC,
    looks_like_mhxb,
    read_header,
    save_engine,
)

PROBE_QUERIES = [
    "count(/descendant::*)",
    "count(//leaf())",
    "/descendant::*/string(.)",
    "for $n in /descendant::* return name($n)",
    "/descendant::line[overlapping::w or xdescendant::w]/string(.)",
    'analyze-string(/, "si")',
]


@pytest.fixture()
def engine() -> Engine:
    return Engine(boethius_document(validate=False))


def _assert_same_results(left: Engine, right: Engine) -> None:
    for query in PROBE_QUERIES:
        assert left.query(query).serialize() == \
            right.query(query).serialize(), query


class TestRoundTrip:
    def test_identical_query_results_vs_mhx_path(self, engine, tmp_path):
        mhx = tmp_path / "doc.mhx"
        mhxb = tmp_path / "doc.mhxb"
        engine.save_mhx(mhx)
        engine.save_mhxb(mhxb)
        via_json = Engine.from_mhx(mhx)
        via_binary = Engine.from_mhxb(mhxb)
        _assert_same_results(via_json, via_binary)

    def test_byte_identical_reserialization(self, engine, tmp_path):
        first = tmp_path / "a.mhxb"
        second = tmp_path / "b.mhxb"
        engine.save_mhxb(first)
        Engine.from_mhxb(first).save_mhxb(second)
        assert first.read_bytes() == second.read_bytes()

    def test_cold_load_passes_invariants(self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        restored.goddag.check_invariants()
        assert restored.version == engine.version
        assert restored.goddag.hierarchy_names == \
            engine.goddag.hierarchy_names

    def test_no_reparse_no_resort_artifacts(self, engine, tmp_path):
        """The cold load restores the span index (no full build) and
        the packed order keys (no recomputation)."""
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        assert restored.goddag._index is not None
        assert restored.goddag.index_full_builds == 0
        for name in restored.goddag.hierarchy_names:
            for node in restored.goddag.nodes_of(name):
                assert node._okey is not None
        restored.goddag.check_invariants()

    def test_dom_materializes_lazily_and_serializes_identically(
            self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        assert restored._document is None  # queries never touched it
        restored.query("count(//w)")
        assert restored._document is None
        original = {name: hierarchy.to_xml() for name, hierarchy
                    in engine.document.hierarchies.items()}
        materialized = {name: hierarchy.to_xml() for name, hierarchy
                        in restored.document.hierarchies.items()}
        assert original == materialized
        assert restored.document.text == engine.document.text

    def test_round_trip_after_updates(self, engine, tmp_path):
        engine.update('rename node /descendant::w[1] as "word"')
        engine.update('insert node <note>marginal</note> '
                      'after /descendant::word[1]')
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        restored.goddag.check_invariants()
        _assert_same_results(engine, restored)
        assert restored.query("//note/string(.)").serialize() \
            == "marginal"

    def test_updates_apply_on_cold_loaded_engine(self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        statement = ('insert node <gloss>explicatio</gloss> '
                     'into /descendant::line[1]')
        engine.update(statement)
        restored.update(statement)
        assert engine.document.text == restored.document.text
        _assert_same_results(engine, restored)
        restored.goddag.check_invariants()

    def test_dtds_survive(self, tmp_path):
        document = boethius_document(validate=True)
        assert document.cmh is not None
        path = tmp_path / "doc.mhxb"
        Engine(document).save_mhxb(path)
        restored = Engine.from_mhxb(path)
        assert restored.document.cmh is not None
        assert restored.document.cmh.sources() == document.cmh.sources()

    def test_comments_pis_attributes_survive(self, tmp_path):
        sources = {
            "a": '<r id="top"><!--lead--><w x="1">ab</w>'
                 '<?proc data?><w>cd</w></r>',
            "b": "<r><s>abc</s><s>d</s></r>",
        }
        document = MultihierarchicalDocument.from_xml("abcd", sources)
        engine = Engine(document)
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        restored.goddag.check_invariants()
        assert {name: hierarchy.to_xml() for name, hierarchy
                in restored.document.hierarchies.items()} == \
            {name: hierarchy.to_xml() for name, hierarchy
             in engine.document.hierarchies.items()}
        _assert_same_results(engine, restored)

    def test_save_refuses_empty_document(self, tmp_path):
        engine = Engine(MultihierarchicalDocument.from_xml(
            "ab", {"only": "<r>ab</r>"}))
        engine.goddag.remove_hierarchy("only")
        with pytest.raises(ReproError, match="empty document"):
            save_engine(engine, tmp_path / "x.mhxb")


class TestFormatErrors:
    def test_load_mhx_rejects_binary_with_clear_error(self, engine,
                                                      tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        with pytest.raises(ReproError, match="binary .mhxb container"):
            load_mhx(path)

    def test_from_mhxb_rejects_json_with_clear_error(self, engine,
                                                     tmp_path):
        path = tmp_path / "doc.mhx"
        engine.save_mhx(path)
        with pytest.raises(ReproError, match="JSON .mhx container"):
            Engine.from_mhxb(path)

    def test_from_mhx_routes_by_extension_and_content(self, engine,
                                                      tmp_path):
        binary = tmp_path / "doc.mhxb"
        engine.save_mhxb(binary)
        assert Engine.from_mhx(binary).query(
            "count(//w)").serialize() == "6"
        # binary content under a .mhx name still routes correctly
        sniffed = tmp_path / "mislabeled.mhx"
        sniffed.write_bytes(binary.read_bytes())
        assert looks_like_mhxb(sniffed)
        assert Engine.from_mhx(sniffed).query(
            "count(//w)").serialize() == "6"

    def test_bad_magic_and_corrupt_header(self, tmp_path):
        garbage = tmp_path / "garbage.mhxb"
        garbage.write_bytes(b"\x89PNG not an mhxb")
        with pytest.raises(ReproError, match="bad magic"):
            read_header(garbage)
        truncated = tmp_path / "truncated.mhxb"
        truncated.write_bytes(MAGIC + (10_000).to_bytes(8, "little")
                              + b"{not json at all")
        with pytest.raises(ReproError, match="corrupt .mhxb header"):
            read_header(truncated)

    def test_format_field_mismatch(self, tmp_path):
        path = tmp_path / "future.mhxb"
        header = json.dumps({"format": "mhxb-99"}).encode()
        path.write_bytes(MAGIC + len(header).to_bytes(8, "little")
                         + header)
        with pytest.raises(ReproError, match="mhxb-1"):
            read_header(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            read_header(tmp_path / "absent.mhxb")


class TestFrozenEngine:
    def test_frozen_engine_rejects_updates_atomically(self, engine):
        engine.update('insert node <note>x</note> '
                      'after /descendant::w[1]')
        before = {name: hierarchy.to_xml() for name, hierarchy
                  in engine.document.hierarchies.items()}
        engine.goddag.freeze()
        with pytest.raises(GoddagError, match="frozen snapshot"):
            engine.update("delete node /descendant::note[1]")
        # nothing mutated, not even the DOM side
        assert {name: hierarchy.to_xml() for name, hierarchy
                in engine.document.hierarchies.items()} == before
        engine.goddag.thaw()
        engine.update("delete node /descendant::note[1]")
        assert engine.query("count(//note)").serialize() == "0"

    def test_frozen_engine_still_answers_analyze_string(self, engine):
        expected = engine.query('analyze-string(/, "si")').serialize()
        engine.goddag.freeze()
        assert engine.query(
            'analyze-string(/, "si")').serialize() == expected
        engine.goddag.check_invariants()
