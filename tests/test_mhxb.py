"""Tests for the ``.mhxb`` binary container (DESIGN.md §10, §12).

Round-trip fidelity (byte-identical re-serialization, identical query
results against the ``.mhx`` JSON path), cold-load reconstruction
invariants, lazy DOM materialization, the wrong-format error behavior
of both loaders, block/header checksum detection, and v1→v2 format
compatibility.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Engine, load_mhx, save_mhx
from repro.errors import GoddagError, IntegrityError, ReproError
from repro.cmh import MultihierarchicalDocument
from repro.corpus.boethius import boethius_document
from repro.store.mhxb import (
    MAGIC,
    MAGIC_V2,
    MHXB_FORMAT,
    MHXB_FORMAT_V1,
    looks_like_mhxb,
    read_header,
    save_engine,
    verify_blocks,
)

PROBE_QUERIES = [
    "count(/descendant::*)",
    "count(//leaf())",
    "/descendant::*/string(.)",
    "for $n in /descendant::* return name($n)",
    "/descendant::line[overlapping::w or xdescendant::w]/string(.)",
    'analyze-string(/, "si")',
]


@pytest.fixture()
def engine() -> Engine:
    return Engine(boethius_document(validate=False))


def _assert_same_results(left: Engine, right: Engine) -> None:
    for query in PROBE_QUERIES:
        assert left.query(query).serialize() == \
            right.query(query).serialize(), query


class TestRoundTrip:
    def test_identical_query_results_vs_mhx_path(self, engine, tmp_path):
        mhx = tmp_path / "doc.mhx"
        mhxb = tmp_path / "doc.mhxb"
        engine.save_mhx(mhx)
        engine.save_mhxb(mhxb)
        via_json = Engine.from_mhx(mhx)
        via_binary = Engine.from_mhxb(mhxb)
        _assert_same_results(via_json, via_binary)

    def test_byte_identical_reserialization(self, engine, tmp_path):
        first = tmp_path / "a.mhxb"
        second = tmp_path / "b.mhxb"
        engine.save_mhxb(first)
        Engine.from_mhxb(first).save_mhxb(second)
        assert first.read_bytes() == second.read_bytes()

    def test_cold_load_passes_invariants(self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        restored.goddag.check_invariants()
        assert restored.version == engine.version
        assert restored.goddag.hierarchy_names == \
            engine.goddag.hierarchy_names

    def test_no_reparse_no_resort_artifacts(self, engine, tmp_path):
        """The cold load restores the span index (no full build) and
        the packed order keys (no recomputation)."""
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        assert restored.goddag._index is not None
        assert restored.goddag.index_full_builds == 0
        for name in restored.goddag.hierarchy_names:
            for node in restored.goddag.nodes_of(name):
                assert node._okey is not None
        restored.goddag.check_invariants()

    def test_dom_materializes_lazily_and_serializes_identically(
            self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        assert restored._document is None  # queries never touched it
        restored.query("count(//w)")
        assert restored._document is None
        original = {name: hierarchy.to_xml() for name, hierarchy
                    in engine.document.hierarchies.items()}
        materialized = {name: hierarchy.to_xml() for name, hierarchy
                        in restored.document.hierarchies.items()}
        assert original == materialized
        assert restored.document.text == engine.document.text

    def test_round_trip_after_updates(self, engine, tmp_path):
        engine.update('rename node /descendant::w[1] as "word"')
        engine.update('insert node <note>marginal</note> '
                      'after /descendant::word[1]')
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        restored.goddag.check_invariants()
        _assert_same_results(engine, restored)
        assert restored.query("//note/string(.)").serialize() \
            == "marginal"

    def test_updates_apply_on_cold_loaded_engine(self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        statement = ('insert node <gloss>explicatio</gloss> '
                     'into /descendant::line[1]')
        engine.update(statement)
        restored.update(statement)
        assert engine.document.text == restored.document.text
        _assert_same_results(engine, restored)
        restored.goddag.check_invariants()

    def test_dtds_survive(self, tmp_path):
        document = boethius_document(validate=True)
        assert document.cmh is not None
        path = tmp_path / "doc.mhxb"
        Engine(document).save_mhxb(path)
        restored = Engine.from_mhxb(path)
        assert restored.document.cmh is not None
        assert restored.document.cmh.sources() == document.cmh.sources()

    def test_comments_pis_attributes_survive(self, tmp_path):
        sources = {
            "a": '<r id="top"><!--lead--><w x="1">ab</w>'
                 '<?proc data?><w>cd</w></r>',
            "b": "<r><s>abc</s><s>d</s></r>",
        }
        document = MultihierarchicalDocument.from_xml("abcd", sources)
        engine = Engine(document)
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        restored.goddag.check_invariants()
        assert {name: hierarchy.to_xml() for name, hierarchy
                in restored.document.hierarchies.items()} == \
            {name: hierarchy.to_xml() for name, hierarchy
             in engine.document.hierarchies.items()}
        _assert_same_results(engine, restored)

    def test_save_refuses_empty_document(self, tmp_path):
        engine = Engine(MultihierarchicalDocument.from_xml(
            "ab", {"only": "<r>ab</r>"}))
        engine.goddag.remove_hierarchy("only")
        with pytest.raises(ReproError, match="empty document"):
            save_engine(engine, tmp_path / "x.mhxb")


class TestFormatErrors:
    def test_load_mhx_rejects_binary_with_clear_error(self, engine,
                                                      tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        with pytest.raises(ReproError, match="binary .mhxb container"):
            load_mhx(path)

    def test_from_mhxb_rejects_json_with_clear_error(self, engine,
                                                     tmp_path):
        path = tmp_path / "doc.mhx"
        engine.save_mhx(path)
        with pytest.raises(ReproError, match="JSON .mhx container"):
            Engine.from_mhxb(path)

    def test_from_mhx_routes_by_extension_and_content(self, engine,
                                                      tmp_path):
        binary = tmp_path / "doc.mhxb"
        engine.save_mhxb(binary)
        assert Engine.from_mhx(binary).query(
            "count(//w)").serialize() == "6"
        # binary content under a .mhx name still routes correctly
        sniffed = tmp_path / "mislabeled.mhx"
        sniffed.write_bytes(binary.read_bytes())
        assert looks_like_mhxb(sniffed)
        assert Engine.from_mhx(sniffed).query(
            "count(//w)").serialize() == "6"

    def test_bad_magic_and_corrupt_header(self, tmp_path):
        garbage = tmp_path / "garbage.mhxb"
        garbage.write_bytes(b"\x89PNG not an mhxb")
        with pytest.raises(ReproError, match="bad magic"):
            read_header(garbage)
        truncated = tmp_path / "truncated.mhxb"
        truncated.write_bytes(MAGIC + (10_000).to_bytes(8, "little")
                              + b"{not json at all")
        with pytest.raises(ReproError, match="corrupt .mhxb header"):
            read_header(truncated)

    def test_format_field_mismatch(self, tmp_path):
        path = tmp_path / "future.mhxb"
        header = json.dumps({"format": "mhxb-99"}).encode()
        path.write_bytes(MAGIC + len(header).to_bytes(8, "little")
                         + header)
        with pytest.raises(ReproError, match="mhxb-1"):
            read_header(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            read_header(tmp_path / "absent.mhxb")


class TestChecksums:
    """Format v2 integrity (DESIGN.md §12): every array block and the
    header carry CRC32s, and a single flipped bit anywhere in any
    block is detected and named."""

    def test_verify_counts_every_block(self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        header, data_start = read_header(path)
        assert verify_blocks(path) == len(header["arrays"])
        assert header["format"] == MHXB_FORMAT
        assert path.read_bytes()[:len(MAGIC_V2)] == MAGIC_V2

    def test_bit_flip_in_every_block_is_detected_and_named(
            self, engine, tmp_path):
        """Satellite: corrupt each block in turn; ``verify_blocks``
        must raise an :class:`IntegrityError` naming exactly the
        corrupted block."""
        pristine = tmp_path / "doc.mhxb"
        engine.save_mhxb(pristine)
        header, data_start = read_header(pristine)
        payload = pristine.read_bytes()
        for name, entry in header["arrays"].items():
            if entry["nbytes"] == 0:
                continue  # empty blocks have no bytes to flip
            mutated = bytearray(payload)
            mutated[data_start + entry["offset"]] ^= 0x01
            victim = tmp_path / "victim.mhxb"
            victim.write_bytes(mutated)
            with pytest.raises(IntegrityError,
                               match="CRC32 mismatch") as info:
                verify_blocks(victim)
            assert info.value.block == name
            assert name in str(info.value)
            # the loader's eager-verify path reports the same failure
            with pytest.raises(IntegrityError):
                Engine.from_mhxb(victim, verify=True)

    def test_last_byte_of_last_block_is_covered(self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        header, data_start = read_header(path)
        last_name, last = max(header["arrays"].items(),
                              key=lambda item: item[1]["offset"])
        payload = bytearray(path.read_bytes())
        payload[data_start + last["offset"] + last["nbytes"] - 1] ^= 0x80
        path.write_bytes(payload)
        with pytest.raises(IntegrityError) as info:
            verify_blocks(path)
        assert info.value.block == last_name

    def test_header_corruption_is_detected(self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        payload = bytearray(path.read_bytes())
        # flip a bit inside the JSON header (past magic+len+crc)
        payload[len(MAGIC_V2) + 8 + 4 + 5] ^= 0x01
        path.write_bytes(payload)
        with pytest.raises(IntegrityError,
                           match="CRC32 mismatch"):
            read_header(path)

    def test_truncated_block_is_detected(self, engine, tmp_path):
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        payload = path.read_bytes()
        path.write_bytes(payload[:-16])
        with pytest.raises(IntegrityError, match="truncated"):
            verify_blocks(path)

    def test_unverified_load_still_works(self, engine, tmp_path):
        """``verify=False`` (the default) keeps the mmap cold load
        lazy — no full-file read at open time."""
        path = tmp_path / "doc.mhxb"
        engine.save_mhxb(path)
        restored = Engine.from_mhxb(path)
        _assert_same_results(engine, restored)


class TestV1Compatibility:
    """Old ``mhxb-1`` containers (no checksums) remain readable, and a
    re-save upgrades them to v2."""

    def test_v1_round_trip_and_upgrade(self, engine, tmp_path):
        old = tmp_path / "old.mhxb"
        save_engine(engine, old, format_version=1)
        assert old.read_bytes()[:len(MAGIC)] == MAGIC
        header, _start = read_header(old)
        assert header["format"] == MHXB_FORMAT_V1
        assert "crc32" not in next(iter(header["arrays"].values()))
        restored = Engine.from_mhxb(old)
        _assert_same_results(engine, restored)
        # v1 has no checksums: verify is a no-op, not a failure
        assert verify_blocks(old) == 0
        # a re-save writes the current (v2) format
        upgraded = tmp_path / "new.mhxb"
        restored.save_mhxb(upgraded)
        assert upgraded.read_bytes()[:len(MAGIC_V2)] == MAGIC_V2
        assert verify_blocks(upgraded) > 0
        _assert_same_results(engine, Engine.from_mhxb(upgraded))

    def test_v1_eager_verify_does_not_fail(self, engine, tmp_path):
        old = tmp_path / "old.mhxb"
        save_engine(engine, old, format_version=1)
        restored = Engine.from_mhxb(old, verify=True)
        assert restored.query("count(//w)").serialize() == "6"

    def test_unknown_format_version_rejected(self, engine, tmp_path):
        with pytest.raises(ReproError, match="format version"):
            save_engine(engine, tmp_path / "x.mhxb", format_version=3)


class TestFrozenEngine:
    def test_frozen_engine_rejects_updates_atomically(self, engine):
        engine.update('insert node <note>x</note> '
                      'after /descendant::w[1]')
        before = {name: hierarchy.to_xml() for name, hierarchy
                  in engine.document.hierarchies.items()}
        engine.goddag.freeze()
        with pytest.raises(GoddagError, match="frozen snapshot"):
            engine.update("delete node /descendant::note[1]")
        # nothing mutated, not even the DOM side
        assert {name: hierarchy.to_xml() for name, hierarchy
                in engine.document.hierarchies.items()} == before
        engine.goddag.thaw()
        engine.update("delete node /descendant::note[1]")
        assert engine.query("count(//note)").serialize() == "0"

    def test_frozen_engine_still_answers_analyze_string(self, engine):
        expected = engine.query('analyze-string(/, "si")').serialize()
        engine.goddag.freeze()
        assert engine.query(
            'analyze-string(/, "si")').serialize() == expected
        engine.goddag.check_invariants()
