"""Integration: the paper's query shapes over synthetic corpora.

The §4 queries are not Boethius-specific; these tests run their shapes
over generated manuscripts and cross-check the answers against
independent implementations (the analysis module and the flat
baselines), so the whole pipeline — generator → CMH → KyGODDAG →
parser → evaluator — is exercised end to end on larger inputs.
"""

from __future__ import annotations

import pytest

from repro.analysis import split_elements
from repro.baselines import fragment_document
from repro.baselines.flatquery import (
    fragment_groups,
    groups_overlapping,
    lines_containing_group,
    search_groups,
)
from repro.core.goddag import KyGoddag
from repro.core.runtime import evaluate_query
from repro.corpus import GeneratorConfig, generate_document


@pytest.fixture(scope="module")
def corpus():
    document = generate_document(GeneratorConfig(
        n_words=250, seed=4242, hyphenation_rate=0.5,
        damage_rate=0.10, restoration_rate=0.10,
        boundary_cross_rate=0.6))
    goddag = KyGoddag.build(document)
    goddag.span_index()
    return document, goddag


class TestLineSearchShape:
    """Q-I.1's shape: lines containing a word, even when split."""

    def test_every_split_word_found_by_overlapping(self, corpus):
        _document, goddag = corpus
        for word in split_elements(goddag, "w", "line"):
            target = word.string_value()
            result = evaluate_query(goddag, f'''
                /descendant::line
                  [xdescendant::w[string(.) = "{target}"] or
                   overlapping::w[string(.) = "{target}"]]
            ''')
            assert len(result) >= 2  # the word spans a line break

    def test_agrees_with_flat_reassembly(self, corpus):
        document, goddag = corpus
        flat = fragment_document(document)
        words = fragment_groups(flat, "w")
        lines = fragment_groups(flat, "line")
        for word in split_elements(goddag, "w", "line")[:5]:
            target = word.string_value()
            goddag_lines = sorted(evaluate_query(goddag, f'''
                for $l in /descendant::line
                  [xdescendant::w[string(.) = "{target}"] or
                   overlapping::w[string(.) = "{target}"]]
                return string($l)
            '''))
            hits = search_groups(words, target)
            flat_lines = sorted(
                g.text for g in lines_containing_group(lines, hits))
            assert goddag_lines == flat_lines


class TestDamagedWordsShape:
    """Q-I.2's shape: words related to <dmg> in any of the three ways."""

    def test_three_way_decomposition_is_exhaustive(self, corpus):
        _document, goddag = corpus
        by_union = set(evaluate_query(goddag, '''
            for $w in /descendant::w
              [xancestor::dmg or xdescendant::dmg or overlapping::dmg]
            return string($w)
        '''))
        by_parts = set()
        for axis in ("xancestor", "xdescendant", "overlapping"):
            by_parts.update(evaluate_query(goddag, f'''
                for $w in /descendant::w[{axis}::dmg]
                return string($w)
            '''))
        assert by_union == by_parts
        assert by_union  # the corpus has damage

    def test_agrees_with_interval_join(self, corpus):
        document, goddag = corpus
        flat = fragment_document(document)
        words = fragment_groups(flat, "w")
        damage = fragment_groups(flat, "dmg")
        flat_damaged = sorted(
            g.text for g in groups_overlapping(words, damage))
        goddag_damaged = sorted(evaluate_query(goddag, '''
            for $w in /descendant::w
              [xancestor::dmg or xdescendant::dmg or overlapping::dmg]
            return string($w)
        '''))
        assert flat_damaged == goddag_damaged


class TestAnalyzeStringShape:
    """Q-II.1/III.1's shape: highlight matches, relate to hierarchies."""

    def test_highlighting_covers_all_matches(self, corpus):
        _document, goddag = corpus
        import re

        expected = len(re.findall("si", goddag.text))
        out = evaluate_query(goddag, '''
            let $res := analyze-string(/, "si")
            return count($res/xdescendant::m)
        ''')
        assert out == [expected]

    def test_match_structure_flags(self, corpus):
        _document, goddag = corpus
        rows = evaluate_query(goddag, '''
            let $res := analyze-string(/, "si")
            for $m in $res/xdescendant::m
            return if ($m/overlapping::line) then "split" else "whole"
        ''')
        assert set(rows) <= {"split", "whole"}
        assert rows  # matches exist

    def test_repeated_queries_do_not_leak(self, corpus):
        _document, goddag = corpus
        hierarchies = list(goddag.hierarchy_names)
        leaf_count = len(goddag.partition)
        for _ in range(3):
            evaluate_query(goddag,
                           'count(analyze-string(/, "si")'
                           '/xdescendant::m)')
        assert goddag.hierarchy_names == hierarchies
        assert len(goddag.partition) == leaf_count


class TestCountingConsistency:
    def test_leaf_count_vs_partition(self, corpus):
        _document, goddag = corpus
        assert evaluate_query(
            goddag, "count(/descendant::leaf())") == \
            [len(goddag.partition)]

    def test_word_count_vs_generator(self, corpus):
        document, goddag = corpus
        assert evaluate_query(goddag, "count(/descendant::w)") == [250]

    def test_hierarchy_node_tests_partition_nodes(self, corpus):
        _document, goddag = corpus
        total = evaluate_query(
            goddag, "count(/descendant::node())")[0]
        per_hierarchy = sum(
            evaluate_query(
                goddag, f"count(/descendant::node('{name}'))")[0]
            for name in goddag.hierarchy_names)
        leaves = len(goddag.partition)
        # node('h') counts h's nodes plus the shared leaves each time.
        assert per_hierarchy == (total - leaves) + \
            leaves * len(goddag.hierarchy_names)
