"""Differential property tests for the vectorized interval joins.

The batched extended-axis kernels (:mod:`repro.core.goddag.joins`) must
be element-for-element identical to the per-node axis functions — the
Definition 1 oracle that PR 1's property suite already ties to the
paper's literal leaf-set semantics — over randomized multi-hierarchy
corpora, including lazily merged *temporary* hierarchies (the
``analyze-string`` membership shape).  The batched EBV existence probes
are likewise pinned to :func:`~repro.core.goddag.axes.axis_exists_named`
per context node, and whole queries run through the join-lowered plan
pipeline are pinned to the legacy tree-walking evaluator.

Also hosts the PR-5 emission-order audit regression for
``axis_overlapping`` (see its docstring in ``axes.py``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.api import Engine
from repro.cmh import MultihierarchicalDocument
from repro.core.goddag import (
    ColumnarNodeSet,
    KyGoddag,
    TemporaryHierarchyManager,
    evaluate_axis,
    evaluate_axis_batch,
    exists_axis_batch,
    join_axis_batch,
)
from repro.core.goddag.axes import EXTENDED_AXES, axis_exists_named
from repro.core.goddag.nodes import GElement
from repro.core.runtime import evaluate_query

from tests.strategies import join_scenarios

# Scales with the active hypothesis profile so the nightly CI job
# (--hypothesis-profile=nightly, tests/conftest.py) actually fuzzes
# deeper than PR runs.
SETTINGS = settings(max_examples=max(60, settings.default.max_examples),
                    deadline=None)

#: Name pool for the named-kernel draws: hierarchy element names plus a
#: name that never occurs and the shared root's name.
PROBE_NAMES = (None, "w", "dmg", "seg", "nosuch", "r")


def all_nodes(goddag: KyGoddag) -> list:
    """Every context shape an axis step can see: root, hierarchy
    nodes (elements, texts, comments, PIs), attributes (empty-span
    contexts the kernels must drop) and leaves."""
    out = [goddag.root]
    for name in goddag.hierarchy_names:
        for node in goddag.nodes_of(name):
            out.append(node)
            if isinstance(node, GElement):
                out.extend(node.attribute_nodes)
    out.extend(goddag.partition.leaves())
    return out


def pernode_union(goddag: KyGoddag, axis: str, contexts: list,
                  name: str | None) -> list:
    """The oracle: per-node axis evaluation, deduplicated and sorted."""
    seen: dict[int, object] = {}
    for node in contexts:
        for found in evaluate_axis(goddag, axis, node, name):
            seen[id(found)] = found
    return goddag.sort_nodes(list(seen.values()))


def pick_contexts(goddag: KyGoddag, picks: list[int]) -> list:
    pool = all_nodes(goddag)
    return [pool[index % len(pool)] for index in picks]


class TestDifferentialJoins:
    @SETTINGS
    @given(scenario=join_scenarios())
    def test_join_matches_pernode_axes(self, scenario):
        document, picks, temporary = scenario
        goddag = KyGoddag.build(document)
        manager = TemporaryHierarchyManager(goddag)
        if temporary is not None and temporary.spans:
            manager.create(temporary)
        try:
            contexts = pick_contexts(goddag, picks)
            for axis in sorted(EXTENDED_AXES):
                for name in PROBE_NAMES:
                    expected = pernode_union(goddag, axis, contexts, name)
                    got = join_axis_batch(goddag, axis, contexts, name)
                    assert list(got) == expected, (axis, name)
        finally:
            manager.drop_all()

    @SETTINGS
    @given(scenario=join_scenarios())
    def test_exists_matches_pernode_probe(self, scenario):
        document, picks, temporary = scenario
        goddag = KyGoddag.build(document)
        manager = TemporaryHierarchyManager(goddag)
        if temporary is not None and temporary.spans:
            manager.create(temporary)
        try:
            contexts = pick_contexts(goddag, picks)
            for axis in sorted(EXTENDED_AXES):
                for name in ("w", "dmg", "nosuch", "r"):
                    got = exists_axis_batch(goddag, axis, contexts, name)
                    for position, node in enumerate(contexts):
                        want = axis_exists_named(goddag, axis, node, name)
                        assert bool(got[position]) == bool(want), \
                            (axis, name, node)
        finally:
            manager.drop_all()

    @SETTINGS
    @given(scenario=join_scenarios())
    def test_pipeline_joins_match_legacy_evaluator(self, scenario):
        document, _picks, _temporary = scenario
        pipeline = Engine(document)
        queries = [
            "/descendant::*/overlapping::node()",
            "/descendant::w/xdescendant::node()",
            "/descendant::*[overlapping::w]",
            "count(/descendant::node()/xfollowing::leaf())",
            "/descendant::*/xpreceding::node()/xancestor::*",
        ]
        for query in queries:
            expected = evaluate_query(pipeline.goddag, query)
            got = pipeline.query(query)
            assert len(got.items) == len(expected), query
            for want, have in zip(expected, got.items):
                assert want is have, query


class TestColumnarFlow:
    """The struct-of-arrays node-set plumbing between join steps."""

    @pytest.fixture()
    def goddag(self, boethius_doc) -> KyGoddag:
        return KyGoddag.build(boethius_doc)

    def test_join_returns_columnar_node_set(self, goddag):
        words = [n for n in goddag.nodes_of(goddag.hierarchy_names[0])][:8]
        out = join_axis_batch(goddag, "overlapping", words)
        assert isinstance(out, ColumnarNodeSet)
        starts, ends = out.span_columns()
        assert starts.tolist() == [n.start for n in out]
        assert ends.tolist() == [n.end for n in out]

    def test_columns_survive_chained_steps(self, goddag):
        words = list(goddag.nodes_of(goddag.hierarchy_names[0]))[:6]
        first = join_axis_batch(goddag, "xfollowing", words,
                                skip_leaves=True)
        # The chained step consumes the carried columns (no per-node
        # attribute extraction): results still match the oracle.
        second = join_axis_batch(goddag, "xancestor", first)
        assert list(second) == pernode_union(goddag, "xancestor",
                                             list(first), None)

    def test_stats_count_join_steps(self, boethius_doc):
        # use_cost=False pins the mechanical lowering: the cost pass
        # may legally reverse this chain into a scan + semi-join probe
        # (DESIGN.md §16), which runs no extended-axis batch kernel
        engine = Engine(boethius_doc, use_cost=False)
        result = engine.query("/descendant::w/overlapping::line")
        assert result.stats.join_steps == 1
        assert result.stats.batched_extended_steps == 1
        probed = engine.query("/descendant::line[overlapping::w]")
        assert probed.stats.join_steps == 1
        assert probed.stats.batched_extended_steps == 0
        assert "join_steps" in result.stats.as_dict()
        # the costed plan must agree item-for-item with the oracle
        costed = Engine(boethius_doc).query(
            "/descendant::w/overlapping::line")
        assert costed.strings() == result.strings()

    def test_predicated_join_falls_back_to_pernode(self, boethius_doc):
        engine = Engine(boethius_doc)
        legacy = Engine(boethius_doc, use_pipeline=False)
        query = '/descendant::line/xdescendant::w[position() = 1]'
        got = engine.query(query)
        assert got.stats.batched_extended_steps == 0
        assert got.strings() == legacy.query(query).strings()


class TestOverlappingEmissionOrder:
    """PR-5 audit: ``axis_overlapping`` concatenates its two span-sorted
    sublists, which is *not* global document order; every consumer
    sorts by order key.  This pins both facts."""

    @pytest.fixture()
    def crossing(self) -> KyGoddag:
        # n = [1,4) in h0; f = [2,5) in h1 follows-overlaps n;
        # p = [0,3) in h2 precedes-overlaps n.  Document order puts f
        # (rank 1) before p (rank 2); the raw concatenation emits the
        # preceding-overlapping sublist first.
        text = "abcde"
        document = MultihierarchicalDocument.from_xml(text, {
            "h0": "<r>a<n>bcd</n>e</r>",
            "h1": "<r>ab<f>cde</f></r>",
            "h2": "<r><p>abc</p>de</r>",
        })
        return KyGoddag.build(document)

    def _context(self, goddag):
        (node,) = [n for n in goddag.nodes_of("h0")
                   if getattr(n, "name", None) == "n"]
        return node

    def test_raw_emission_is_not_document_order(self, crossing):
        node = self._context(crossing)
        raw = evaluate_axis(crossing, "overlapping", node)
        elements = [n for n in raw if n.name]
        # Span order: the preceding-overlapping sublist first — the
        # audited emission...
        assert [n.name for n in elements] == ["p", "f"]
        keys = [crossing.order_key(n) for n in elements]
        assert keys != sorted(keys)  # ...which is not document order

    def test_every_consumer_emits_document_order(self, crossing):
        node = self._context(crossing)
        expected = ["f", "p"]  # rank order (Definition 3)
        batched = evaluate_axis_batch(crossing, "overlapping", [node])
        assert [n.name for n in batched if n.name] == expected
        joined = join_axis_batch(crossing, "overlapping", [node])
        assert [n.name for n in joined if n.name] == expected
        engine = Engine.from_parts(
            goddag=crossing, document_loader=lambda: None)
        result = engine.query("/descendant::n/overlapping::*")
        assert [n.name for n in result.items] == expected
        legacy = evaluate_query(crossing, "/descendant::n/overlapping::*")
        assert [n.name for n in legacy] == expected


class TestRestoredIndexJoins:
    """Joins over a ``.mhxb`` cold-loaded engine: the end-sorted
    preorder column is not persisted and must be derived lazily."""

    def test_joins_after_cold_load(self, tmp_path, boethius_doc):
        warm = Engine(boethius_doc)
        warm.goddag.span_index()
        path = tmp_path / "doc.mhxb"
        warm.save_mhxb(path)
        cold = Engine.from_mhxb(path)
        index = cold.goddag.span_index()
        assert index.e_preorders is None  # not persisted
        queries = [
            "/descendant::w/overlapping::line",
            "/descendant::line/xpreceding::w",
            "/descendant::line[overlapping::w]",
            # Unnamed step: forces the *global* end-sorted okey column,
            # whose preorder input is derived lazily on restored indexes
            # (named steps gather per-name columns and never need it).
            "count(/descendant::line/xpreceding::node())",
        ]
        for query in queries:
            assert cold.query(query).strings() == \
                warm.query(query).strings(), query
        assert index.e_preorders is not None  # derived on first use
        okeys, e_okeys = index.okey_columns()
        assert np.array_equal(np.sort(okeys), np.sort(e_okeys))
