"""Tests for the experiments registry and runner internals."""

from __future__ import annotations

import pytest

from repro.core.lang import parse_query
from repro.experiments.paperdata import (
    EXAMPLE_1,
    FIGURE_2_INVENTORY,
    PAPER_QUERIES,
)
from repro.experiments.runner import (
    ExperimentReport,
    format_reports,
    run_all,
    run_experiment,
    run_figure_2,
)


class TestPaperData:
    def test_four_queries_registered(self):
        assert [spec.id for spec in PAPER_QUERIES] == [
            "Q-I.1", "Q-I.2", "Q-II.1", "Q-III.1"]

    def test_all_queries_parse(self):
        for spec in PAPER_QUERIES:
            parse_query(spec.query)
            if spec.amended_query:
                parse_query(spec.amended_query)

    def test_exact_specs_have_equal_expectations(self):
        for spec in PAPER_QUERIES:
            if spec.id in ("Q-I.1", "Q-II.1"):
                assert spec.expected_output == spec.paper_output

    def test_delta_specs_carry_amendments_and_notes(self):
        for spec in PAPER_QUERIES:
            if spec.expected_output != spec.paper_output:
                assert spec.amended_query is not None
                assert spec.amended_output is not None
                assert spec.notes

    def test_example_1_fields(self):
        assert EXAMPLE_1["pattern"] == ".*un<a>a</a>we.*"
        assert EXAMPLE_1["paper_output"].startswith("<res><m>")

    def test_figure_2_inventory_totals(self):
        counts = FIGURE_2_INVENTORY["elements"]
        assert sum(sum(v.values()) for v in counts.values()) == 16
        assert FIGURE_2_INVENTORY["leaves"] == 16


class TestRunner:
    def test_reports_shape(self):
        reports = run_all()
        assert [r.id for r in reports] == [
            "FIG2", "EX1", "Q-I.1", "Q-I.2", "Q-II.1", "Q-III.1"]
        for report in reports:
            assert isinstance(report, ExperimentReport)
            assert report.measured

    def test_reuses_provided_goddag(self, goddag):
        report = run_experiment("Q-I.1", goddag)
        assert report.matches_paper
        # Temp hierarchies from analyze-string queries must not leak.
        run_experiment("Q-II.1", goddag)
        assert goddag.hierarchy_names == [
            "physical", "structural", "restoration", "damage"]

    def test_figure_2_direct(self, goddag):
        report = run_figure_2(goddag)
        assert report.matches_paper
        assert "leaves=16" in report.measured

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("TAB-7")

    def test_summary_row_statuses(self):
        exact = ExperimentReport("X", "t", "a", "a", True, True)
        delta = ExperimentReport("Y", "t", "a", "b", False, True)
        broken = ExperimentReport("Z", "t", "a", "c", False, False)
        assert "EXACT" in exact.summary_row()
        assert "documented delta" in delta.summary_row()
        assert "MISMATCH" in broken.summary_row()

    def test_format_includes_amended_lines(self):
        text = format_reports(run_all())
        assert "amended" in text
        assert "notes" in text
