"""Differential tests: the compiled pipeline vs. the legacy evaluator.

The tree-walking evaluator is the oracle (ISSUE 2): for every query the
pipeline must produce an *item-for-item identical* sequence — same
length, same node identities for persistent KyGODDAG nodes, same spans
for (re-canonicalized) leaves, same serialization for snapshotted and
atomic items.  The query pool covers every axis family, the ordering
quirks (reverse axes, positional predicates, expression steps), FLWOR
with order-by, constructors and the analyze-string lifecycle; the
hypothesis test runs a rotating sample against random corpora.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.core.goddag import GLeaf, GNode, KyGoddag
from repro.core.plan import compile_query
from repro.core.runtime import QueryStats, evaluate_query
from repro.core.runtime.serializer import serialize_item
from repro.corpus.boethius import boethius_document
from repro.corpus.generator import GeneratorConfig, generate_document
from repro.experiments.paperdata import PAPER_QUERIES

from tests.strategies import multihierarchical_documents

#: Queries exercising every pipeline code path against the oracle.
WORKLOAD_QUERIES = [
    "/descendant::w/ancestor::line",
    "(/descendant::w)[3]/ancestor::*",
    "(/descendant::w)[3]/ancestor-or-self::node()",
    "(/descendant::leaf())[2]/parent::node()",
    "(/descendant::w)[5]/preceding::w",
    "(/descendant::w)[5]/preceding::w[2]",
    "(/descendant::w)[5]/preceding-sibling::node()[1]",
    "(/descendant::w)[4]/following::node()[3]",
    "(/descendant::w)[4]/following::seg",
    "(/descendant::w)[4]/preceding::seg",
    "//w",
    "//w[1]",
    "//line/w",
    "/descendant::*/self::w",
    "/descendant::*[self::w]",
    "//dmg/xancestor::w",
    "(/descendant::dmg)[1]/xancestor::node()",
    "/descendant::line[overlapping::w]",
    "/descendant::line[xdescendant::w[string(.) = 'zzz'] or overlapping::w]",
    "/descendant::leaf()[ancestor::w and ancestor::dmg]",
    "/descendant::leaf()[ancestor::r]",
    "/descendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]",
    "/descendant::w[xfollowing::dmg]",
    "/descendant::w[xpreceding::dmg]",
    "/descendant::w[preceding-overlapping::dmg]",
    "/descendant::w[following-overlapping::dmg]",
    "/descendant::w[matches(string(.), '.*a.*')]",
    "/descendant::w[string(.) != 'zzz']",
    "/descendant::w['zzz' = string(.)]",
    "for $w in /descendant::w return string($w)",
    "for $w at $i in /descendant::w[position() < 5] return $i",
    "for $l in /descendant::line let $c := count(/descendant::dmg) return $c",
    "for $x in (1,2,3) for $y in (4,5) return $x * $y",
    "for $w in //w order by string($w) descending return string($w)",
    "for $w in //w where string-length(string($w)) > 4 "
    "order by string($w) return name($w)",
    "some $w in /descendant::w satisfies string($w) = 'xyzzy'",
    "every $w in /descendant::w satisfies string-length(string($w)) > 0",
    "/descendant::w | /descendant::dmg",
    "(/descendant::w intersect /descendant::*) | (//dmg except //w)",
    "if (count(//w) > 3) then 'many' else 'few'",
    "if (//dmg) then 'd' else 'n'",
    "(1 to 5)[. mod 2 = 1]",
    "/descendant::w/string(.)",
    "//line/node()",
    "//line/text()",
    "//*('physical')",
    "//node('structural')",
    "count(//leaf())",
    # unpredicated leaf sibling steps under order-insensitive consumers:
    # a leaf's sibling groups repeat per hierarchy, so the emit="any"
    # fast path must still deduplicate (regression, ISSUE 2 review)
    "count((/descendant::leaf())[2]/preceding-sibling::node())",
    "count((/descendant::leaf())[2]/following-sibling::node())",
    "sum((1e16, 1, -1e16))",
    "/descendant::w[last()]",
    "(//w)[2.0]",
    "(//w)[2.5]",
    "<out n='{count(//w)}'>{//w[1]}</out>",
    "analyze-string(/, 'a')",
    "for $w in (//w)[position() < 3] return "
    "(let $r := analyze-string($w, '.') return count($r/descendant::m))",
    "for $w in (//w)[position() < 3] return "
    "(let $r := analyze-string($w, '.') return count($r/xdescendant::m))",
    "reverse(//w/string(.))",
    "distinct-values(//w/string(.))",
]


def items_equal(left, right) -> bool:
    """Item-for-item equality against the oracle.

    Persistent KyGODDAG nodes must be the *same objects*.  Leaves are
    compared by span: a leaf split and re-coalesced by a temporary
    hierarchy is re-canonicalized as a fresh object (even two legacy
    runs differ there).  Everything else — snapshotted temp content,
    constructed nodes, atomics — compares by serialization.
    """
    if isinstance(left, GLeaf) and isinstance(right, GLeaf):
        return (left.start, left.end) == (right.start, right.end)
    if isinstance(left, GNode) or isinstance(right, GNode):
        return left is right
    return serialize_item(left) == serialize_item(right)


def assert_pipeline_matches_oracle(goddag: KyGoddag, query: str) -> None:
    try:
        expected = evaluate_query(goddag, query)
        oracle_error = None
    except Exception as error:  # noqa: BLE001 - error parity check
        expected, oracle_error = None, error
    try:
        actual = compile_query(query).execute(goddag)
        pipeline_error = None
    except Exception as error:  # noqa: BLE001
        actual, pipeline_error = None, error
    if oracle_error is not None or pipeline_error is not None:
        assert (oracle_error is None) == (pipeline_error is None), (
            f"error mismatch for {query!r}: oracle={oracle_error!r} "
            f"pipeline={pipeline_error!r}")
        return
    assert len(actual) == len(expected), (
        f"length mismatch for {query!r}: {len(expected)} vs {len(actual)}")
    for position, (want, got) in enumerate(zip(expected, actual)):
        assert items_equal(want, got), (
            f"item {position} differs for {query!r}: "
            f"{serialize_item(want)!r} vs {serialize_item(got)!r}")


@pytest.fixture(scope="module")
def corpus_goddag() -> KyGoddag:
    config = GeneratorConfig(n_words=150, seed=7, hyphenation_rate=0.35,
                             damage_rate=0.1, restoration_rate=0.1,
                             boundary_cross_rate=0.5)
    return KyGoddag.build(generate_document(config))


@pytest.fixture(scope="module")
def boethius_goddag() -> KyGoddag:
    return KyGoddag.build(boethius_document(validate=False))


class TestDifferentialWorkload:
    @pytest.mark.parametrize("query", WORKLOAD_QUERIES)
    def test_corpus(self, corpus_goddag, query):
        assert_pipeline_matches_oracle(corpus_goddag, query)

    @pytest.mark.parametrize(
        "query",
        [spec.query for spec in PAPER_QUERIES]
        + [spec.amended_query for spec in PAPER_QUERIES
           if spec.amended_query],
        ids=[spec.id for spec in PAPER_QUERIES]
        + [spec.id + "-amended" for spec in PAPER_QUERIES
           if spec.amended_query])
    def test_paper_queries_on_boethius(self, boethius_goddag, query):
        assert_pipeline_matches_oracle(boethius_goddag, query)

    @pytest.mark.parametrize(
        "query", [spec.query for spec in PAPER_QUERIES],
        ids=[spec.id for spec in PAPER_QUERIES])
    def test_paper_queries_on_corpus(self, corpus_goddag, query):
        assert_pipeline_matches_oracle(corpus_goddag, query)


@settings(max_examples=25, deadline=None)
@given(document=multihierarchical_documents(),
       index=st.integers(min_value=0, max_value=len(WORKLOAD_QUERIES) - 1),
       offset=st.integers(min_value=0, max_value=6))
def test_differential_random_documents(document, index, offset):
    """Rotating query sample over hypothesis-generated corpora."""
    goddag = KyGoddag.build(document)
    for step in range(3):
        query = WORKLOAD_QUERIES[
            (index + step * (offset + 1)) % len(WORKLOAD_QUERIES)]
        assert_pipeline_matches_oracle(goddag, query)


# ---------------------------------------------------------------------------
# post-mutation differential pack (ISSUE 3)
# ---------------------------------------------------------------------------

#: Applied in order to the generated corpus before re-running the whole
#: workload: together they exercise every apply path (in-place rename,
#: single-hierarchy re-registration, full text rebuild).
POST_MUTATION_STATEMENTS = [
    "rename node (/descendant::w)[2] as 'word'",
    "add markup mark to 'damage' covering (/descendant::w)[4]",
    "insert node <w>addendum</w> after (/descendant::w)[1]",
    "replace value of node (/descendant::w)[3] with 'mended'",
    "remove markup (/descendant::mark)[1]",
    "delete node (/descendant::w)[5]",
]


@pytest.fixture(scope="module")
def mutated_engine() -> Engine:
    """An engine whose plan cache was warmed *before* the mutations.

    Every workload query compiles pre-mutation, so the re-query pass
    below pins that compiled-plan caches are keyed by document version
    and never serve pre-mutation state (the stale-plan regression).
    """
    config = GeneratorConfig(n_words=120, seed=7, hyphenation_rate=0.35,
                             damage_rate=0.1, restoration_rate=0.1,
                             boundary_cross_rate=0.5)
    engine = Engine(generate_document(config))
    engine.goddag.span_index()
    for query in WORKLOAD_QUERIES:
        try:
            engine.compile(query)
        except Exception:  # noqa: BLE001 - some queries only error at runtime
            pass
    for statement in POST_MUTATION_STATEMENTS:
        engine.update(statement, check=True)
    return engine


class TestPostMutationDifferential:
    """query → update → re-query: the full workload after mutations."""

    @pytest.mark.parametrize("query", WORKLOAD_QUERIES)
    def test_workload_after_mutations(self, mutated_engine, query):
        assert_pipeline_matches_oracle(mutated_engine.goddag, query)

    @pytest.mark.parametrize(
        "query", [spec.query for spec in PAPER_QUERIES],
        ids=[spec.id for spec in PAPER_QUERIES])
    def test_paper_queries_after_mutations(self, mutated_engine, query):
        assert_pipeline_matches_oracle(mutated_engine.goddag, query)

    def test_mutations_visible_through_cached_plans(self, mutated_engine):
        assert mutated_engine.query("count(//word)").items == [1]
        assert mutated_engine.query(
            "count(//w[string(.) = 'mended'])").items == [1]
        assert mutated_engine.query(
            "count(//w[string(.) = 'addendum'])").items == [1]
        assert mutated_engine.query("count(//mark)").items == [0]

    def test_mutated_engine_matches_full_rebuild(self, mutated_engine):
        rebuilt = Engine(_reserialized_document(mutated_engine.document))
        for query in ("count(/descendant::*)", "count(//leaf())",
                      "/descendant::*/string(.)"):
            assert mutated_engine.query(query).strings() == \
                rebuilt.query(query).strings()


def _reserialized_document(document):
    """Round-trip the mutated document through its serialized form."""
    from repro.cmh import MultihierarchicalDocument

    return MultihierarchicalDocument.from_xml(
        document.text,
        {name: hierarchy.to_xml()
         for name, hierarchy in document.hierarchies.items()})


# ---------------------------------------------------------------------------
# explain() golden snapshots
# ---------------------------------------------------------------------------


EXPLAIN_GOLDENS = {
    "1 + 2 * 3": (
        "query: 1 + 2 * 3\n"
        "rewrites:\n"
        "  - constant-folding: 2 * 3 -> 6\n"
        "  - constant-folding: 1 + 6 -> 7\n"
        "plan:\n"
        "  const (7)"
    ),
    "//w": (
        "query: //w\n"
        "rewrites:\n"
        "  - anchor-normalization: // -> /descendant-or-self::node()/\n"
        "  - step-fusion: descendant-or-self::node()/child::T -> "
        "descendant::T\n"
        "plan:\n"
        "  path anchor=root\n"
        "    step descendant::w [skip-leaves]"
    ),
    '/descendant::line[xdescendant::w[string(.) = "singallice"]]': (
        'query: /descendant::line[xdescendant::w[string(.) = '
        '"singallice"]]\n'
        "rewrites:\n"
        "  - join-lowering: xdescendant:: step lowered to a "
        "set-at-a-time containment join\n"
        "plan:\n"
        "  path anchor=root\n"
        "    step descendant::line [skip-leaves]\n"
        "      predicate [boolean]\n"
        "        path anchor=relative [unordered-result]\n"
        "          interval-join xdescendant::w [kernel=containment, "
        "skip-leaves, unordered]\n"
        "            predicate [boolean]\n"
        "              compare general '='\n"
        "                call string()\n"
        "                  context-item\n"
        "                const ('singallice')"
    ),
    "/descendant::line[overlapping::w]": (
        "query: /descendant::line[overlapping::w]\n"
        "rewrites:\n"
        "  - join-lowering: overlapping:: step lowered to a "
        "set-at-a-time stab join\n"
        "  - join-lowering: [overlapping::w] predicate batched as a "
        "semi-join existence probe\n"
        "plan:\n"
        "  path anchor=root\n"
        "    step descendant::line [skip-leaves]\n"
        "      predicate [semi-join overlapping::w]"
    ),
    "for $w in //w let $c := count(//line) return $c": (
        "query: for $w in //w let $c := count(//line) return $c\n"
        "rewrites:\n"
        "  - anchor-normalization: // -> /descendant-or-self::node()/\n"
        "  - step-fusion: descendant-or-self::node()/child::T -> "
        "descendant::T\n"
        "  - anchor-normalization: // -> /descendant-or-self::node()/\n"
        "  - step-fusion: descendant-or-self::node()/child::T -> "
        "descendant::T\n"
        "  - hoist-invariant: let $c evaluated once per FLWOR execution\n"
        "plan:\n"
        "  flwor [streaming]\n"
        "    for $w\n"
        "      path anchor=root\n"
        "        step descendant::w [skip-leaves]\n"
        "    let $c [hoisted-invariant]\n"
        "      call count()\n"
        "        path anchor=root [unordered-result]\n"
        "          step descendant::line [skip-leaves, unordered]\n"
        "    var $c"
    ),
}


class TestExplainGoldens:
    @pytest.mark.parametrize("query", list(EXPLAIN_GOLDENS))
    def test_explain_snapshot(self, query):
        assert compile_query(query).explain() == EXPLAIN_GOLDENS[query]

    def test_engine_explain_and_cli_agree(self, capsys):
        from repro.cli import main

        code = main(["explain", "--sample", "1 + 2 * 3"])
        assert code == 0
        assert capsys.readouterr().out.strip() == \
            EXPLAIN_GOLDENS["1 + 2 * 3"]


# ---------------------------------------------------------------------------
# engine integration: plan cache, stats, legacy escape hatch
# ---------------------------------------------------------------------------


class TestEnginePipeline:
    @pytest.fixture()
    def engine(self) -> Engine:
        return Engine(boethius_document(validate=False))

    def test_plan_cache_hit_reported(self, engine):
        first = engine.query("count(/descendant::w)")
        assert first.stats is not None
        assert first.stats.plan_cache_hit is False
        second = engine.query("count(/descendant::w)")
        assert second.stats.plan_cache_hit is True
        assert first.items == second.items == [6]

    def test_compile_returns_cached_object(self, engine):
        compiled = engine.compile("count(//w)")
        assert engine.compile("count(//w)") is compiled
        assert engine.execute(compiled).items == [6]

    def test_stats_counters_populated(self, engine):
        result = engine.query("/descendant::line[overlapping::w]")
        assert result.stats.axis_steps > 0
        assert result.stats.batched_steps > 0

    def test_legacy_escape_hatch(self):
        engine = Engine(boethius_document(validate=False),
                        use_pipeline=False)
        result = engine.query("count(/descendant::w)")
        assert result.items == [6]
        assert result.stats.batched_steps == 0

    def test_deprecated_stats_alias_still_updates(self, engine):
        from repro.core.runtime.evaluator import LAST_QUERY_STATS

        evaluate_query(engine.goddag, "/descendant::w/self::w")
        assert LAST_QUERY_STATS["axis_steps"] > 0
        assert LAST_QUERY_STATS["ordered_steps"] <= \
            LAST_QUERY_STATS["axis_steps"]

    def test_per_call_stats_object(self, engine):
        stats = QueryStats()
        evaluate_query(engine.goddag, "/descendant::w", stats=stats)
        assert stats.axis_steps == 1
        assert stats["axis_steps"] == 1  # dict-style compatibility

    def test_xpath_rejects_flwor_through_pipeline(self, engine):
        from repro.errors import QuerySyntaxError

        with pytest.raises(QuerySyntaxError):
            engine.xpath("for $x in //w return $x")
