"""Property tests: analyze-string invariants and baseline round-trips."""

from __future__ import annotations

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    defragment,
    demilestone,
    fragment_document,
    milestone_document,
)
from repro.cmh.spans import spans_of
from repro.core.goddag import KyGoddag
from repro.core.runtime import evaluate_query, serialize_items

from tests.strategies import multihierarchical_documents

SETTINGS = settings(max_examples=40, deadline=None)

_patterns = st.text(alphabet="abϸ x", min_size=1, max_size=4)


def _strip_tags(markup: str) -> str:
    return re.sub(r"<[^>]*>", "", markup)


@SETTINGS
@given(document=multihierarchical_documents(min_text=1), data=st.data())
def test_analyze_string_preserves_content(document, data):
    """The <res> markup re-tags the node's content without changing it."""
    goddag = KyGoddag.build(document)
    pattern = re.escape(data.draw(_patterns))
    out = serialize_items(evaluate_query(
        goddag, f'analyze-string(/, "{pattern}")'))
    # The root wraps all of S: stripping tags must give back S exactly
    # (the alphabet contains no XML-escaped characters).
    assert _strip_tags(out) == document.text


@SETTINGS
@given(document=multihierarchical_documents(min_text=1), data=st.data())
def test_analyze_string_tags_every_match(document, data):
    goddag = KyGoddag.build(document)
    needle = data.draw(_patterns)
    pattern = re.escape(needle)
    out = serialize_items(evaluate_query(
        goddag, f'analyze-string(/, "{pattern}")'))
    expected_matches = len(re.findall(pattern, document.text))
    assert out.count("<m>") == expected_matches


@SETTINGS
@given(document=multihierarchical_documents(), data=st.data())
def test_analyze_string_restores_goddag(document, data):
    goddag = KyGoddag.build(document)
    hierarchies = list(goddag.hierarchy_names)
    leaves = [(l.start, l.end) for l in goddag.leaves()]
    pattern = re.escape(data.draw(_patterns))
    evaluate_query(goddag, f'analyze-string(/, "{pattern}")')
    assert goddag.hierarchy_names == hierarchies
    assert [(l.start, l.end) for l in goddag.leaves()] == leaves


def _signature(document):
    return sorted((s.start, s.end, s.name) for s in spans_of(document))


def _assert_hierarchies_recovered(document, rebuilt):
    """Hierarchies with markup round-trip; element-less hierarchies
    contribute nothing to a flat encoding and are (by design) not
    recoverable from it."""
    for name in document.hierarchy_names:
        expected = _signature(document[name].document)
        if name in rebuilt:
            assert _signature(rebuilt[name].document) == expected
        else:
            assert expected == []


@SETTINGS
@given(document=multihierarchical_documents(max_hierarchies=3))
def test_fragmentation_round_trip(document):
    flat = fragment_document(document)
    assert flat.root.text_content() == document.text
    _assert_hierarchies_recovered(document, defragment(flat))


@SETTINGS
@given(document=multihierarchical_documents(max_hierarchies=3))
def test_milestone_round_trip(document):
    primary = document.hierarchy_names[0]
    flat = milestone_document(document, primary=primary)
    assert flat.root.text_content() == document.text
    rebuilt = demilestone(flat, primary)
    # The primary hierarchy always comes back (possibly element-less).
    assert primary in rebuilt
    for name in document.hierarchy_names:
        expected = _signature(document[name].document)
        if name in rebuilt:
            assert _signature(rebuilt[name].document) == expected
        else:
            assert expected == []


@SETTINGS
@given(document=multihierarchical_documents())
def test_count_queries_consistent(document):
    """count(descendant::leaf()) equals the partition size; the node()
    test from the root covers every hierarchy node plus leaves."""
    goddag = KyGoddag.build(document)
    leaf_count = evaluate_query(goddag,
                                "count(/descendant-or-self::leaf())")
    assert leaf_count == [len(goddag.partition)]
    node_count = evaluate_query(goddag, "count(/descendant::node())")
    expected = sum(len(goddag.nodes_of(h))
                   for h in goddag.hierarchy_names)
    assert node_count == [expected + len(goddag.partition)]
