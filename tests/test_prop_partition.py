"""Property tests for the leaf partition (paper §3).

The partition is defined as *longest substrings no markup breaks*;
these properties pin down exactly that:

* tiling — leaves concatenate to the base text;
* closure — every markup boundary is a leaf boundary;
* maximality — every internal leaf boundary is some markup boundary
  (leaves are as long as possible);
* reversibility — removing a hierarchy restores the previous partition.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmh.spans import spans_of
from repro.core.goddag import KyGoddag

from tests.strategies import multihierarchical_documents, span_sets

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(document=multihierarchical_documents())
def test_leaves_tile_the_text(document):
    goddag = KyGoddag.build(document)
    assert "".join(l.text for l in goddag.leaves()) == document.text


@SETTINGS
@given(document=multihierarchical_documents())
def test_markup_boundaries_are_leaf_boundaries(document):
    goddag = KyGoddag.build(document)
    for name in document.hierarchy_names:
        for span in spans_of(document[name].document):
            assert goddag.partition.is_boundary(span.start)
            assert goddag.partition.is_boundary(span.end)


@SETTINGS
@given(document=multihierarchical_documents())
def test_partition_maximality(document):
    """Each internal boundary is contributed by some markup or text
    node edge — no leaf is split gratuitously."""
    goddag = KyGoddag.build(document)
    contributed: set[int] = {0, len(document.text)}
    for name in goddag.hierarchy_names:
        for node in goddag.nodes_of(name):
            contributed.add(node.start)
            contributed.add(node.end)
    for boundary in goddag.partition.boundaries:
        assert boundary in contributed


@SETTINGS
@given(document=multihierarchical_documents())
def test_leaf_parents_one_text_node_per_hierarchy(document):
    goddag = KyGoddag.build(document)
    hierarchy_count = len(document.hierarchy_names)
    for leaf in goddag.leaves():
        parents = goddag.text_parents_of_leaf(leaf)
        assert len(parents) == hierarchy_count
        assert len({p.hierarchy for p in parents}) == hierarchy_count
        for parent in parents:
            assert parent.start <= leaf.start and leaf.end <= parent.end


@SETTINGS
@given(document=multihierarchical_documents(), data=st.data())
def test_add_remove_hierarchy_restores_partition(document, data):
    goddag = KyGoddag.build(document)
    before = [(l.start, l.end) for l in goddag.leaves()]
    extra = data.draw(span_sets(document.text, max_spans=4))
    goddag.add_hierarchy_from_spans("extra", extra, temporary=True)
    # While present, the extra markup's boundaries are leaf boundaries.
    for span in extra.spans:
        assert goddag.partition.is_boundary(span.start)
    goddag.remove_hierarchy("extra")
    assert [(l.start, l.end) for l in goddag.leaves()] == before


@SETTINGS
@given(document=multihierarchical_documents())
def test_leaves_of_equals_leaf_set_within_span(document):
    """``leaves(n)`` == the leaves lying inside the node's span."""
    goddag = KyGoddag.build(document)
    all_leaves = goddag.leaves()
    for name in goddag.hierarchy_names:
        for node in goddag.nodes_of(name):
            expected = [l for l in all_leaves
                        if node.start <= l.start and l.end <= node.end]
            assert goddag.leaves_of(node) == expected


@SETTINGS
@given(document=multihierarchical_documents())
def test_leaf_at_consistent_with_leaves(document):
    goddag = KyGoddag.build(document)
    for leaf in goddag.leaves():
        for offset in range(leaf.start, leaf.end):
            assert goddag.partition.leaf_at(offset) is leaf
