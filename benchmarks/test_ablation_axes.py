"""ABLATE-INDEX — what the sorted span index buys (DESIGN.md §3).

The production extended axes answer Definition 1 by binary search over
the sorted span index; :mod:`repro.core.goddag.naive` transcribes the
definition literally (full scan, explicit leaf sets).  Both are proved
equal by the test suite; this bench measures the gap for the two axes
the paper's queries lean on.
"""

from __future__ import annotations

import pytest

from repro.bench import goddag_at_size
from repro.core.goddag.axes import axis_overlapping, axis_xdescendant
from repro.core.goddag.naive import naive_overlapping, naive_xdescendant

from conftest import record

SIZE = 400


def _mid_line(goddag):
    lines = list(goddag.elements("line"))
    return lines[len(lines) // 2]


@pytest.mark.benchmark(group="ABLATE-overlapping")
def test_indexed_overlapping(benchmark):
    goddag = goddag_at_size(SIZE)
    goddag.span_index()
    node = _mid_line(goddag)
    result = benchmark(axis_overlapping, goddag, node)
    assert {id(n) for n in result} == \
        {id(n) for n in naive_overlapping(goddag, node)}
    record("ABLATE overlapping", "AGREES",
           "indexed and literal Definition 1 return identical sets")


@pytest.mark.benchmark(group="ABLATE-overlapping")
def test_naive_overlapping(benchmark):
    goddag = goddag_at_size(SIZE)
    node = _mid_line(goddag)
    result = benchmark(naive_overlapping, goddag, node)
    assert isinstance(result, list)


@pytest.mark.benchmark(group="ABLATE-xdescendant")
def test_indexed_xdescendant(benchmark):
    goddag = goddag_at_size(SIZE)
    goddag.span_index()
    node = _mid_line(goddag)
    result = benchmark(axis_xdescendant, goddag, node)
    assert {id(n) for n in result} == \
        {id(n) for n in naive_xdescendant(goddag, node)}


@pytest.mark.benchmark(group="ABLATE-xdescendant")
def test_naive_xdescendant(benchmark):
    goddag = goddag_at_size(SIZE)
    node = _mid_line(goddag)
    result = benchmark(naive_xdescendant, goddag, node)
    assert isinstance(result, list)


@pytest.mark.benchmark(group="ABLATE-pushdown")
def test_xdescendant_with_name_pushdown(benchmark):
    """Name-test pushdown (DESIGN.md): filter inside the index."""
    goddag = goddag_at_size(SIZE)
    goddag.span_index()
    node = _mid_line(goddag)
    result = benchmark(axis_xdescendant, goddag, node, "w")
    assert all(n.name == "w" for n in result)


@pytest.mark.benchmark(group="ABLATE-pushdown")
def test_xdescendant_with_post_filter(benchmark):
    """The same answer filtered after a hint-less evaluation."""
    goddag = goddag_at_size(SIZE)
    goddag.span_index()
    node = _mid_line(goddag)

    def run():
        return [n for n in axis_xdescendant(goddag, node)
                if n.name == "w"]

    filtered = benchmark(run)
    assert {id(n) for n in filtered} == \
        {id(n) for n in axis_xdescendant(goddag, node, "w")}
