"""The bench-regression wall: diff fresh bench runs against baselines.

Compares candidate ``BENCH_*.json`` files (a fresh ``emit_bench.py``
run) against the checked-in baselines and **fails** on regression,
instead of merely uploading artifacts:

* a *time* metric (any numeric leaf under the ``median_ns…`` trees)
  regresses when ``candidate > baseline * (1 + tolerance)``;
* a *ratio* metric (leaves named ``speedup`` — machine-independent,
  so held to a band of their own) regresses when
  ``candidate < baseline * (1 - ratio tolerance)``.

Tolerances come from ``--tolerance`` / ``--ratio-tolerance`` or the
``REPRO_BENCH_WALL_TOLERANCE`` / ``REPRO_BENCH_WALL_RATIO_TOLERANCE``
environment variables (defaults 0.40 — the 40 % noise band).  Shared
CI runners differ wildly from the quiet baseline machine in absolute
speed, so CI sets a loose time band and leans on the ratio wall; the
defaults are meant for like-for-like machines.

Usage::

    python benchmarks/check_regression.py BASELINE:CANDIDATE \
        [BASELINE:CANDIDATE ...] [--tolerance 0.4] \
        [--ratio-tolerance 0.4]

Exit status 1 when any metric regresses; improvements only report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: payload keys that never hold comparable metrics
_SKIP_KEYS = {"schema", "series", "config"}


def iter_metrics(tree, prefix: str = ""):
    """Yield ``(dotted path, value)`` for every numeric leaf."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            if not prefix and key in _SKIP_KEYS:
                continue
            yield from iter_metrics(value,
                                    f"{prefix}.{key}" if prefix else key)
    elif isinstance(tree, (int, float)) and not isinstance(tree, bool):
        yield prefix, float(tree)


def compare(baseline: dict, candidate: dict, tolerance: float,
            ratio_tolerance: float) -> tuple[list[str], list[str]]:
    """``(regressions, notes)`` between two bench payloads."""
    base = dict(iter_metrics(baseline))
    cand = dict(iter_metrics(candidate))
    regressions: list[str] = []
    notes: list[str] = []
    for path, reference in sorted(base.items()):
        observed = cand.get(path)
        if observed is None:
            regressions.append(f"{path}: metric missing from candidate")
            continue
        is_ratio = path.rsplit(".", 1)[-1] == "speedup"
        if is_ratio:
            floor = reference * (1.0 - ratio_tolerance)
            if observed < floor:
                regressions.append(
                    f"{path}: speedup {observed:.2f} fell below "
                    f"{floor:.2f} (baseline {reference:.2f}, "
                    f"ratio tolerance {ratio_tolerance:.0%})")
            else:
                notes.append(f"{path}: {reference:.2f} -> "
                             f"{observed:.2f} ok")
        else:
            ceiling = reference * (1.0 + tolerance)
            if observed > ceiling:
                regressions.append(
                    f"{path}: {observed:.0f} exceeds {ceiling:.0f} "
                    f"(baseline {reference:.0f}, tolerance "
                    f"{tolerance:.0%})")
            else:
                change = ((observed / reference - 1.0) * 100
                          if reference else 0.0)
                notes.append(f"{path}: {reference:.0f} -> "
                             f"{observed:.0f} ({change:+.0f}%) ok")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pairs", nargs="+", metavar="BASELINE:CANDIDATE",
                        help="baseline and candidate JSON paths, "
                             "colon-separated")
    parser.add_argument("--tolerance", type=float, default=float(
        os.environ.get("REPRO_BENCH_WALL_TOLERANCE", "0.40")),
        help="allowed fractional slowdown on time metrics")
    parser.add_argument("--ratio-tolerance", type=float, default=float(
        os.environ.get("REPRO_BENCH_WALL_RATIO_TOLERANCE", "0.40")),
        help="allowed fractional drop on speedup metrics")
    args = parser.parse_args(argv)

    failures: list[str] = []
    for pair in args.pairs:
        baseline_path, _sep, candidate_path = pair.partition(":")
        if not _sep:
            parser.error(f"bad pair {pair!r}; want BASELINE:CANDIDATE")
        try:
            baseline = json.loads(
                Path(baseline_path).read_text(encoding="utf-8"))
            candidate = json.loads(
                Path(candidate_path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            failures.append(f"{pair}: cannot load payloads: {error}")
            continue
        regressions, notes = compare(baseline, candidate,
                                     args.tolerance,
                                     args.ratio_tolerance)
        print(f"== {baseline_path} vs {candidate_path} "
              f"({len(notes)} ok, {len(regressions)} regressed)")
        for note in notes:
            print(f"   {note}")
        for regression in regressions:
            print(f"   REGRESSION {regression}")
        failures.extend(f"{baseline_path}: {regression}"
                        for regression in regressions)
    if failures:
        print(f"\nbench-regression wall: {len(failures)} metric(s) "
              f"regressed", file=sys.stderr)
        return 1
    print("\nbench-regression wall: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
