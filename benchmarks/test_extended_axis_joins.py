"""S-JOINS — vectorized interval joins vs the per-node extended axes.

The tentpole claim of ISSUE 5: the extended-axis workload (overlap +
cross-hierarchy containment/boundary steps, each over the full context
set of the largest bench corpus) runs ≥ 5× faster through the
set-at-a-time join kernels (``join_axis_batch``, DESIGN.md §11) than
through the per-node path (``evaluate_axis_batch``: one span-arithmetic
call per context node plus a Python-object merge — the pre-PR-5 hot
path), while staying **element-for-element identical**.

Shared CI runners override the floor through
``REPRO_BENCH_MIN_JOIN_SPEEDUP`` to damp wall-clock noise; quiet
machines enforce the real target.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import SCALING_SIZES, goddag_at_size
from repro.core.goddag import evaluate_axis_batch, join_axis_batch

from conftest import record
from emit_bench import JOIN_WORKLOAD, join_step_contexts

LARGEST = SCALING_SIZES[-1]

MIN_JOIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_JOIN_SPEEDUP", "5.0"))


def best_of(function, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - begin)
    return best


@pytest.fixture(scope="module")
def workload():
    goddag = goddag_at_size(LARGEST)
    goddag.span_index()
    steps = [(label, join_step_contexts(goddag, element), axis, name)
             for label, element, axis, name in JOIN_WORKLOAD]
    assert all(contexts for _label, contexts, _axis, _name in steps)
    return goddag, steps


def test_joins_identical_to_pernode_path(workload):
    """Every workload step: batched join ≡ per-node union, element for
    element (both sides document-ordered and deduplicated)."""
    goddag, steps = workload
    checked = 0
    for label, contexts, axis, name in steps:
        batched = join_axis_batch(goddag, axis, contexts, name,
                                  skip_leaves=True)
        pernode = evaluate_axis_batch(goddag, axis, contexts, name,
                                      skip_leaves=True)
        assert len(batched) == len(pernode), label
        for want, got in zip(pernode, batched):
            assert want is got, label
        checked += len(batched)
    record("S-JOINS parity", "PASS",
           f"{len(steps)} join steps, {checked} result nodes identical")


def test_join_workload_speedup(workload):
    goddag, steps = workload

    def run_batched() -> None:
        for _label, contexts, axis, name in steps:
            join_axis_batch(goddag, axis, contexts, name,
                            skip_leaves=True)

    def run_pernode() -> None:
        for _label, contexts, axis, name in steps:
            evaluate_axis_batch(goddag, axis, contexts, name,
                                skip_leaves=True)

    run_batched()  # warm the okey/name-interval columns
    run_pernode()
    batched_time = best_of(run_batched)
    pernode_time = best_of(run_pernode)
    speedup = pernode_time / batched_time
    record("S-JOINS speedup", "PASS" if speedup >= MIN_JOIN_SPEEDUP
           else "FAIL",
           f"batched {batched_time * 1e3:.1f}ms vs per-node "
           f"{pernode_time * 1e3:.1f}ms = {speedup:.1f}x "
           f"(floor {MIN_JOIN_SPEEDUP:.1f}x) at n={LARGEST}")
    assert speedup >= MIN_JOIN_SPEEDUP, (
        f"interval-join workload speedup {speedup:.2f}x fell below the "
        f"{MIN_JOIN_SPEEDUP:.1f}x floor (batched {batched_time:.4f}s, "
        f"per-node {pernode_time:.4f}s)")
