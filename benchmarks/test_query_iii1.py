"""Q-III.1 — §4 query: match highlighted and restored parts italicized (multi-hierarchy)."""

from __future__ import annotations

import pytest

from repro.core.runtime import evaluate_query, serialize_items
from repro.experiments.paperdata import PAPER_QUERIES

from conftest import record

SPEC = PAPER_QUERIES[3]


@pytest.mark.benchmark(group="Q-III.1")
def test_iii1_literal_query(benchmark, boethius_goddag_session):
    goddag = boethius_goddag_session

    def run() -> str:
        return serialize_items(evaluate_query(goddag, SPEC.query))

    measured = benchmark(run)
    assert measured == SPEC.expected_output
    status = "EXACT" if measured == SPEC.paper_output else "DOCUMENTED DELTA"
    record("Q-III.1 literal", status, measured)


@pytest.mark.benchmark(group="Q-III.1")
def test_iii1_amended_query(benchmark, boethius_goddag_session):
    """The documented variant (see EXPERIMENTS.md Q-III.1)."""
    goddag = boethius_goddag_session

    def run() -> str:
        return serialize_items(evaluate_query(goddag, SPEC.amended_query))

    measured = benchmark(run)
    assert measured == SPEC.amended_output
    record("Q-III.1 amended", "MATCHES EXPECTATION", measured)
