"""S-INGEST — streaming bulk ingest vs the DOM pipeline.

The tentpole claim of ISSUE 9 (DESIGN.md §15): ``stream_save`` — the
one-pass event-driven builder that emits node tables, okeys, SpanIndex
permutations and partition multisets directly in ``.mhxb`` form —
ingests the largest bench corpus ≥ 2× faster (words/sec) than the DOM
pipeline (parse → ``MultihierarchicalDocument`` → ``KyGoddag.build``
→ ``save_engine``), while producing byte-identical output.  Shared CI
runners damp the floor through ``REPRO_BENCH_MIN_INGEST_SPEEDUP``.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.api import Engine
from repro.bench import SCALING_SIZES, corpus_at_size
from repro.cmh import MultihierarchicalDocument
from repro.markup.streaming import stream_save
from repro.store.mhxb import save_engine

from conftest import record

LARGEST = SCALING_SIZES[-1]

MIN_INGEST_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_INGEST_SPEEDUP", "2.0"))


def median_of(function, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        gc.collect()  # the DOM side churns ~10^5 nodes; decouple runs
        begin = time.perf_counter()
        function()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    return samples[len(samples) // 2]


@pytest.fixture(scope="module")
def inputs(tmp_path_factory):
    root = tmp_path_factory.mktemp("ingest")
    corpus = corpus_at_size(LARGEST)
    sources = {name: hierarchy.to_xml() for name, hierarchy
               in corpus.hierarchies.items()}
    return root, corpus.text, sources


def _stream(root, text, sources) -> None:
    stream_save(text, sources, root / "stream.mhxb")


def _dom(root, text, sources) -> None:
    document = MultihierarchicalDocument.from_xml(text, sources)
    save_engine(Engine(document), root / "dom.mhxb")


def test_streaming_output_byte_identical(inputs):
    root, text, sources = inputs
    _stream(root, text, sources)
    _dom(root, text, sources)
    assert (root / "stream.mhxb").read_bytes() == \
        (root / "dom.mhxb").read_bytes()
    record("S-INGEST parity", "PASS",
           f"n={LARGEST}: streamed .mhxb byte-identical to the DOM "
           f"pipeline ({(root / 'stream.mhxb').stat().st_size} bytes)")


def test_streaming_ingest_beats_dom_pipeline(inputs):
    root, text, sources = inputs
    words = len(text.split())
    _stream(root, text, sources)  # warm interning + pack caches
    _dom(root, text, sources)
    streaming = median_of(lambda: _stream(root, text, sources),
                          repeats=7)
    dom = median_of(lambda: _dom(root, text, sources), repeats=3)
    speedup = dom / streaming
    record("S-INGEST throughput", "PASS" if speedup >=
           MIN_INGEST_SPEEDUP else "FAIL",
           f"n={LARGEST}: dom {words / dom:.0f} w/s, "
           f"streaming {words / streaming:.0f} w/s ({speedup:.1f}x)")
    assert speedup >= MIN_INGEST_SPEEDUP, (
        f"streaming ingest speedup {speedup:.2f}x below the "
        f"{MIN_INGEST_SPEEDUP}x floor "
        f"(dom {dom:.3f}s, streaming {streaming:.3f}s)")
