"""S-BUILD — KyGODDAG construction scaling.

The paper's future work (§5) is an "efficient implementation of
extended XQuery over multihierarchical document structures"; this
series measures where the reproduction stands: build time of the
KyGODDAG (four hierarchies, realistic overlap) as the corpus grows.
"""

from __future__ import annotations

import pytest

from repro.bench import SCALING_SIZES, corpus_at_size
from repro.core.goddag import KyGoddag

from conftest import record


@pytest.mark.parametrize("n_words", SCALING_SIZES)
@pytest.mark.benchmark(group="S-BUILD")
def test_build_scaling(benchmark, n_words):
    document = corpus_at_size(n_words)
    goddag = benchmark(KyGoddag.build, document)
    leaves = len(goddag.partition)
    assert leaves >= n_words  # word boundaries alone force this
    record(f"S-BUILD n={n_words}", "SERIES",
           f"{leaves} leaves, "
           f"{sum(len(goddag.nodes_of(h)) for h in goddag.hierarchy_names)}"
           f" hierarchy nodes")


@pytest.mark.parametrize("n_words", SCALING_SIZES)
@pytest.mark.benchmark(group="S-BUILD-index")
def test_span_index_scaling(benchmark, n_words):
    from repro.bench import goddag_at_size
    from repro.core.goddag.index import SpanIndex

    goddag = goddag_at_size(n_words)
    index = benchmark(SpanIndex, goddag)
    assert len(index) > n_words
