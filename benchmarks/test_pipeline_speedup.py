"""S-PIPELINE — the compiled query pipeline vs the legacy evaluator.

The tentpole claim of ISSUE 2: repeated execution of the paper's §4
query workload through ``Engine.query`` (plan cache warm) beats the
PR-1 baseline — per-call parse plus the tree-walking evaluator, the
path ``Engine(use_pipeline=False)`` still takes — by ≥ 2× on the
largest bench corpus, while staying **item-for-item identical** to the
legacy evaluator on every workload query.

Shared CI runners override the floor through
``REPRO_BENCH_MIN_PIPELINE_SPEEDUP`` to damp wall-clock noise; quiet
machines enforce the real target (measured headroom ≈ 2.5-3×).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api import Engine
from repro.bench import SCALING_SIZES, corpus_at_size
from repro.core.goddag import GLeaf, GNode
from repro.core.runtime.serializer import serialize_item

from conftest import record

LARGEST = SCALING_SIZES[-1]

MIN_PIPELINE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PIPELINE_SPEEDUP", "2.0"))


def best_of(function, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - begin)
    return best


@pytest.fixture(scope="module")
def engines():
    from repro.bench.workloads import paper_query_workload

    document = corpus_at_size(LARGEST)
    pipeline = Engine(document)
    legacy = Engine(document, use_pipeline=False)
    pipeline.goddag.span_index()
    legacy.goddag.span_index()
    return pipeline, legacy, paper_query_workload()


def _items_equal(left, right) -> bool:
    if isinstance(left, GLeaf) and isinstance(right, GLeaf):
        return (left.start, left.end) == (right.start, right.end)
    if isinstance(left, GNode) or isinstance(right, GNode):
        return left is right
    return serialize_item(left) == serialize_item(right)


def test_pipeline_results_identical_to_legacy(engines):
    """Every workload query: pipeline ≡ legacy, item for item."""
    pipeline, legacy, workload = engines
    for query_id, query in workload:
        expected = legacy.query(query).items
        actual = pipeline.query(query).items
        assert len(actual) == len(expected), query_id
        for want, got in zip(expected, actual):
            assert _items_equal(want, got), query_id
    record("S-PIPELINE parity", "PASS",
           f"{len(workload)} workload queries item-for-item identical")


def test_pipeline_workload_speedup(engines):
    pipeline, legacy, workload = engines

    def run_pipeline() -> None:
        for _query_id, query in workload:
            pipeline.query(query)

    def run_legacy() -> None:
        for _query_id, query in workload:
            legacy.query(query)

    run_pipeline()  # warm the plan cache (and every lazy index)
    run_legacy()
    pipeline_time = best_of(run_pipeline)
    legacy_time = best_of(run_legacy)
    speedup = legacy_time / pipeline_time
    record("S-PIPELINE workload", "PASS" if speedup >=
           MIN_PIPELINE_SPEEDUP else "FAIL",
           f"n={LARGEST}: legacy {legacy_time * 1e3:.0f} ms, "
           f"pipeline {pipeline_time * 1e3:.0f} ms ({speedup:.1f}x)")
    assert speedup >= MIN_PIPELINE_SPEEDUP, (
        f"pipeline speedup {speedup:.2f}x below the "
        f"{MIN_PIPELINE_SPEEDUP}x floor "
        f"(legacy {legacy_time:.3f}s, pipeline {pipeline_time:.3f}s)")


def test_plan_cache_serves_repeats(engines):
    """The second identical call must come from the plan LRU."""
    pipeline, _legacy, workload = engines
    _query_id, query = workload[0]
    pipeline.query(query)
    result = pipeline.query(query)
    assert result.stats is not None
    assert result.stats.plan_cache_hit is True
    assert result.stats.batched_steps > 0
