"""S-STORE durability — the price of crash safety (DESIGN.md §12).

The robustness claim of ISSUE 6: checksummed, durably-committed writes
must not make the store unusable.  ``durability="batch"`` (no per-save
fsync; dirty files coalesced into an explicit ``sync()``) commits
within ``REPRO_BENCH_MAX_BATCH_OVERHEAD``× (default 2×) of
``durability="off"`` on the largest bench corpus, and every mode must
produce byte-identical container files — the fsync discipline changes
*when* bytes are durable, never *which* bytes.
"""

from __future__ import annotations

import gc
import os
import time

from repro.api import Engine
from repro.bench import SCALING_SIZES, corpus_at_size
from repro.store import DocumentStore

from conftest import record

LARGEST = SCALING_SIZES[-1]

MAX_BATCH_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_BATCH_OVERHEAD", "2.0"))

#: an involution (word → w → word) so every timed commit does the same
#: work against the same document state
STATEMENTS = [
    'rename node /descendant::w[1] as "word"',
    'rename node /descendant::word[1] as "w"',
]


def median_of(function, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        gc.collect()
        begin = time.perf_counter()
        function()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    return samples[len(samples) // 2]


def commit_time(root, mode: str, repeats: int = 7) -> float:
    store = DocumentStore.init(root, durability=mode)
    store.add("doc", corpus_at_size(LARGEST))

    def commit() -> None:
        for statement in STATEMENTS:
            store.update("doc", statement)

    commit()  # warm the snapshot + plan cache
    elapsed = median_of(commit, repeats)
    store.sync()
    return elapsed


def test_batch_durability_overhead_bounded(tmp_path):
    off = commit_time(tmp_path / "off", "off")
    batch = commit_time(tmp_path / "batch", "batch")
    overhead = batch / off
    record("S-STORE durability", "PASS" if overhead <=
           MAX_BATCH_OVERHEAD else "FAIL",
           f"n={LARGEST}: off {off * 1e3:.1f} ms, "
           f"batch {batch * 1e3:.1f} ms ({overhead:.2f}x)")
    assert overhead <= MAX_BATCH_OVERHEAD, (
        f"durability='batch' commit is {overhead:.2f}x over 'off', "
        f"above the {MAX_BATCH_OVERHEAD}x ceiling "
        f"(off {off:.4f}s, batch {batch:.4f}s)")


def test_durability_modes_write_identical_bytes(tmp_path):
    engine = Engine(corpus_at_size(LARGEST))
    engine.goddag.span_index()
    payloads = {}
    for mode in ("off", "full"):
        path = tmp_path / f"{mode}.mhxb"
        engine.save_mhxb(path, durability=mode)
        payloads[mode] = path.read_bytes()
    assert payloads["off"] == payloads["full"]
    record("S-STORE durability parity", "PASS",
           f"n={LARGEST}: fsync policy does not change file bytes")
