"""FIG1 — Figure 1: parsing and aligning the four Boethius encodings.

Regenerates the paper's Figure 1 artifact: the base text plus the four
hierarchy encodings, checked against the CMH invariant (all encodings
encode the same S) and the per-hierarchy DTDs.
"""

from __future__ import annotations

import pytest

from repro.cmh import MultihierarchicalDocument
from repro.corpus.boethius import BASE_TEXT, ENCODINGS, boethius_cmh

from conftest import record


@pytest.mark.benchmark(group="FIG1")
def test_fig1_parse_and_align(benchmark):
    document = benchmark(
        MultihierarchicalDocument.from_xml, BASE_TEXT, ENCODINGS)
    assert document.hierarchy_names == [
        "physical", "structural", "restoration", "damage"]
    record("FIG1 parse+align", "EXACT",
           f"4 encodings over the {len(BASE_TEXT)}-char fragment align")


@pytest.mark.benchmark(group="FIG1")
def test_fig1_dtd_validation(benchmark):
    cmh = boethius_cmh()

    def build_and_validate():
        document = MultihierarchicalDocument.from_xml(BASE_TEXT, ENCODINGS)
        document.attach_cmh(cmh)
        return document

    document = benchmark(build_and_validate)
    assert document.cmh is cmh
    record("FIG1 CMH validation", "EXACT",
           "all four encodings valid per their DTDs; shared root 'r'")
