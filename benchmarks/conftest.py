"""Benchmark-suite fixtures and the paper-vs-measured summary.

Every reproduction benchmark both *times* its artifact and *checks* it
against the paper's printed output; the checks' outcomes are collected
here and printed as a summary table after the pytest-benchmark tables.
"""

from __future__ import annotations

import pytest

from repro.core.goddag import KyGoddag
from repro.corpus.boethius import boethius_document

_REPORT_ROWS: list[tuple[str, str, str]] = []


def record(experiment: str, status: str, detail: str) -> None:
    """Record one paper-vs-measured row for the end-of-run summary."""
    _REPORT_ROWS.append((experiment, status, detail))


@pytest.fixture(scope="session")
def boethius_goddag_session() -> KyGoddag:
    """One shared KyGODDAG of the paper's Figure 1 document."""
    return KyGoddag.build(boethius_document(validate=False))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_ROWS:
        return
    terminalreporter.write_sep("=", "paper-vs-measured summary")
    width = max(len(row[0]) for row in _REPORT_ROWS) + 2
    for experiment, status, detail in _REPORT_ROWS:
        terminalreporter.write_line(
            f"{experiment:{width}} {status:22} {detail}")
