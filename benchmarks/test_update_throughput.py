"""S-UPDATE — incremental update apply vs rebuild-per-update.

The tentpole claim of ISSUE 3: applying update statements through the
live engine (in-place renames, partition boundary splicing, span-index
component surgery — never a from-scratch rebuild) beats the naive
baseline — re-parse every hierarchy's XML, rebuild the KyGODDAG and
its span index for every statement, as
:class:`~repro.core.update.RebuildOracle` does — by ≥ 5× on the
largest bench corpus for the markup-level workload (rename /
``add markup`` / ``remove markup``), while producing byte-identical
serializations.

Text-changing statements (insert/delete) re-register every hierarchy,
so their advantage is smaller; they are reported, not gated.  Shared
CI runners damp the floor through ``REPRO_BENCH_MIN_UPDATE_SPEEDUP``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api import Engine
from repro.bench import SCALING_SIZES, corpus_at_size
from repro.core.update import RebuildOracle

from conftest import record

LARGEST = SCALING_SIZES[-1]

MIN_UPDATE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_UPDATE_SPEEDUP", "5.0"))

#: Markup-level statements forming an involution: running the list
#: returns the document to its starting state, so timed repeats are
#: stable and the incremental/rebuild states stay comparable.
MARKUP_STATEMENTS = [
    "rename node (/descendant::w)[10] as 'word'",
    "rename node (/descendant::word)[1] as 'w'",
    "add markup mark to 'damage' covering (/descendant::w)[20]",
    "remove markup (/descendant::mark)[1]",
    "add markup mark to 'restoration' covering (/descendant::w)[40]",
    "remove markup (/descendant::mark)[1]",
    "rename node (/descendant::line)[2] as 'row'",
    "rename node (/descendant::row)[1] as 'line'",
]

#: Text-changing pair, also an involution (reported, not gated).
TEXT_STATEMENTS = [
    "insert node <w>benchword</w> after (/descendant::w)[30]",
    "delete node (/descendant::w[string(.) = 'benchword'])[1]",
]


def best_of(function, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - begin)
    return best


def _private_corpus():
    """A deep copy of the bench corpus via serialization round trip.

    ``corpus_at_size`` is memoized process-wide and other benchmark
    modules share its return value; updates mutate documents in place,
    so the mutation benchmarks must never touch the cached instance.
    """
    from repro.cmh import MultihierarchicalDocument

    shared = corpus_at_size(LARGEST)
    return MultihierarchicalDocument.from_xml(
        shared.text, {name: hierarchy.to_xml()
                      for name, hierarchy in shared.hierarchies.items()})


@pytest.fixture(scope="module")
def update_paths():
    engine = Engine(_private_corpus())
    engine.goddag.span_index()
    oracle = RebuildOracle(_private_corpus())
    return engine, oracle


def test_incremental_matches_rebuild_serialization(update_paths):
    """Both paths land on byte-identical documents after the workload."""
    engine, oracle = update_paths
    for statement in MARKUP_STATEMENTS + TEXT_STATEMENTS:
        engine.update(statement, check=False)
        oracle.apply(statement)
    assert engine.document.text == oracle.text
    mine = {name: hierarchy.to_xml() for name, hierarchy
            in engine.document.hierarchies.items()}
    assert mine == oracle.sources
    engine.goddag.check_invariants()
    record("S-UPDATE parity", "PASS",
           f"{len(MARKUP_STATEMENTS + TEXT_STATEMENTS)} statements, "
           f"serializations byte-identical")


def test_incremental_markup_updates_beat_rebuild(update_paths):
    engine, oracle = update_paths

    def run_incremental() -> None:
        for statement in MARKUP_STATEMENTS:
            engine.update(statement, check=False)

    def run_rebuild() -> None:
        for statement in MARKUP_STATEMENTS:
            oracle.apply(statement)

    run_incremental()  # warm lazy indexes on both sides
    run_rebuild()
    incremental = best_of(run_incremental)
    rebuild = best_of(run_rebuild)
    speedup = rebuild / incremental
    record("S-UPDATE markup ops", "PASS" if speedup >=
           MIN_UPDATE_SPEEDUP else "FAIL",
           f"n={LARGEST}: rebuild {rebuild * 1e3:.0f} ms, "
           f"incremental {incremental * 1e3:.0f} ms ({speedup:.1f}x)")
    assert speedup >= MIN_UPDATE_SPEEDUP, (
        f"incremental update speedup {speedup:.2f}x below the "
        f"{MIN_UPDATE_SPEEDUP}x floor "
        f"(rebuild {rebuild:.3f}s, incremental {incremental:.3f}s)")


def test_text_updates_reported(update_paths):
    """Insert/delete re-register every hierarchy: still ahead of a
    rebuild (no XML re-parse), but not gated at the markup floor."""
    engine, oracle = update_paths

    def run_incremental() -> None:
        for statement in TEXT_STATEMENTS:
            engine.update(statement, check=False)

    def run_rebuild() -> None:
        for statement in TEXT_STATEMENTS:
            oracle.apply(statement)

    run_incremental()
    run_rebuild()
    incremental = best_of(run_incremental)
    rebuild = best_of(run_rebuild)
    speedup = rebuild / incremental
    record("S-UPDATE text ops", "PASS" if speedup >= 1.0 else "FAIL",
           f"n={LARGEST}: rebuild {rebuild * 1e3:.0f} ms, "
           f"incremental {incremental * 1e3:.0f} ms ({speedup:.1f}x)")
    assert speedup >= 1.0, (
        f"text-changing updates slower than a full rebuild "
        f"({speedup:.2f}x)")
