"""C-MILE — the same §1 claim, milestone encoding.

Non-primary hierarchies collapse to empty start/end markers; answering
the paper's queries then requires a full document walk with offset
bookkeeping to rebuild marker extents, joined by hand against the
primary tree.  KyGODDAG answers the identical information needs with
the extended axes.
"""

from __future__ import annotations

import pytest

from repro.baselines import milestone_document
from repro.baselines.flatquery import (
    lines_containing_group,
    milestone_groups,
    primary_groups,
    search_groups,
)
from repro.bench import corpus_at_size, goddag_at_size
from repro.core.runtime import evaluate_query

from conftest import record

SIZES = (400, 1600)

GODDAG_QUERY = (
    'for $l in /descendant::line'
    '[xdescendant::w[string(.) = "singallice"] or '
    'overlapping::w[string(.) = "singallice"]] '
    'return string($l)')


def flat_answer(flat) -> list[str]:
    words = primary_groups(flat, "w")
    hits = search_groups(words, "singallice")
    lines = milestone_groups(flat, "line")
    return sorted(g.text for g in lines_containing_group(lines, hits))


@pytest.mark.parametrize("n_words", SIZES)
@pytest.mark.benchmark(group="C-MILE-lines")
def test_goddag_line_search(benchmark, n_words):
    goddag = goddag_at_size(n_words)
    goddag.span_index()
    result = benchmark(
        lambda: sorted(evaluate_query(goddag, GODDAG_QUERY)))
    flat = milestone_document(corpus_at_size(n_words),
                              primary="structural")
    assert result == flat_answer(flat)
    record(f"C-MILE lines (goddag) n={n_words}", "AGREES",
           f"{len(result)} lines found by both representations")


@pytest.mark.parametrize("n_words", SIZES)
@pytest.mark.benchmark(group="C-MILE-lines")
def test_milestone_line_search(benchmark, n_words):
    flat = milestone_document(corpus_at_size(n_words),
                              primary="structural")
    result = benchmark(flat_answer, flat)
    assert isinstance(result, list)


@pytest.mark.parametrize("n_words", SIZES)
@pytest.mark.benchmark(group="C-MILE-encode")
def test_milestone_encoding_cost(benchmark, n_words):
    document = corpus_at_size(n_words)
    flat = benchmark(milestone_document, document, "structural")
    markers = sum(1 for e in flat.root.iter_elements()
                  if e.get("sid") is not None)
    record(f"C-MILE markers n={n_words}", "SERIES",
           f"{markers} marker elements inserted")
