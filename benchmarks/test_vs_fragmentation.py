"""C-FRAG — the paper's §1 claim against fragmentation "hacks".

*"Representing such markup using 'hacks' in XML comes with a steep
price at query processing time"* (§2, citing [6]).  Both sides answer
the same two information needs on the same corpus:

* Q-I.1 shape — find lines containing a given (possibly fragmented)
  word;
* Q-I.2 shape — find words overlapping damage markup.

KyGODDAG runs the extended-XQuery one-liner; the baseline must walk the
flat document, reassemble fragment groups, and join extents by hand.
Answers are asserted equal; the benchmark shows who pays what.
"""

from __future__ import annotations

import pytest

from repro.baselines import fragment_document
from repro.baselines.flatquery import (
    fragment_groups,
    groups_overlapping,
    lines_containing_group,
    search_groups,
)
from repro.bench import corpus_at_size, goddag_at_size
from repro.core.runtime import evaluate_query

from conftest import record

SIZES = (400, 1600)

GODDAG_LINES_QUERY = (
    'for $l in /descendant::line'
    '[xdescendant::w[string(.) = "singallice"] or '
    'overlapping::w[string(.) = "singallice"]] '
    'return string($l)')

GODDAG_DAMAGED_QUERY = (
    "for $w in /descendant::w[xancestor::dmg or xdescendant::dmg "
    "or overlapping::dmg] return string($w)")


def flat_lines_answer(flat) -> list[str]:
    words = fragment_groups(flat, "w")
    hits = search_groups(words, "singallice")
    lines = fragment_groups(flat, "line")
    return sorted(g.text for g in lines_containing_group(lines, hits))


def flat_damaged_answer(flat) -> list[str]:
    words = fragment_groups(flat, "w")
    damage = fragment_groups(flat, "dmg")
    return sorted(g.text for g in groups_overlapping(words, damage))


@pytest.mark.parametrize("n_words", SIZES)
@pytest.mark.benchmark(group="C-FRAG-lines")
def test_goddag_line_search(benchmark, n_words):
    goddag = goddag_at_size(n_words)
    goddag.span_index()
    result = benchmark(
        lambda: sorted(evaluate_query(goddag, GODDAG_LINES_QUERY)))
    flat = fragment_document(corpus_at_size(n_words))
    assert result == flat_lines_answer(flat)
    record(f"C-FRAG lines (goddag) n={n_words}", "AGREES",
           f"{len(result)} lines found by both representations")


@pytest.mark.parametrize("n_words", SIZES)
@pytest.mark.benchmark(group="C-FRAG-lines")
def test_fragmentation_line_search(benchmark, n_words):
    flat = fragment_document(corpus_at_size(n_words))
    result = benchmark(flat_lines_answer, flat)
    assert isinstance(result, list)


@pytest.mark.parametrize("n_words", SIZES)
@pytest.mark.benchmark(group="C-FRAG-damaged")
def test_goddag_damaged_words(benchmark, n_words):
    goddag = goddag_at_size(n_words)
    goddag.span_index()
    result = benchmark(
        lambda: sorted(evaluate_query(goddag, GODDAG_DAMAGED_QUERY)))
    flat = fragment_document(corpus_at_size(n_words))
    assert result == flat_damaged_answer(flat)
    record(f"C-FRAG damaged (goddag) n={n_words}", "AGREES",
           f"{len(result)} damaged words found by both representations")


@pytest.mark.parametrize("n_words", SIZES)
@pytest.mark.benchmark(group="C-FRAG-damaged")
def test_fragmentation_damaged_words(benchmark, n_words):
    flat = fragment_document(corpus_at_size(n_words))
    result = benchmark(flat_damaged_answer, flat)
    assert isinstance(result, list)


#: Same-engine comparison: the fragmentation encoding loaded as a
#: single-hierarchy KyGODDAG and queried with *standard* axes only —
#: fragment reassembly becomes a value-based join on @fid, which is the
#: "steep price" the paper's §1 refers to.  Kept to small sizes: the
#: join is quadratic in the word count.
ENGINE_SIZES = (100, 400)

ENGINE_FLAT_QUERY = """
for $first in /descendant::w[string(@part) = "" or string(@part) = "I"]
let $fid := string($first/@fid)
let $text := string-join(
    for $f in /descendant::w[string(@fid) = $fid] return string($f), "")
where $text = "singallice"
return
  for $lid in distinct-values(
      for $f in /descendant::w[string(@fid) = $fid]
      return string($f/ancestor::line/@fid))
  return string-join(
      for $g in /descendant::line[string(@fid) = $lid]
      return string($g), "")
"""


def _flat_goddag(n_words):
    from repro.core.goddag import KyGoddag

    document = corpus_at_size(n_words)
    flat = fragment_document(document)
    goddag = KyGoddag(document.text, document.root_name)
    goddag.add_hierarchy_from_dom("flat", flat)
    return goddag


@pytest.mark.parametrize("n_words", ENGINE_SIZES)
@pytest.mark.benchmark(group="C-FRAG-same-engine")
def test_engine_on_goddag(benchmark, n_words):
    goddag = goddag_at_size(n_words)
    goddag.span_index()
    result = benchmark(
        lambda: sorted(evaluate_query(goddag, GODDAG_LINES_QUERY)))
    assert isinstance(result, list)


@pytest.mark.parametrize("n_words", ENGINE_SIZES)
@pytest.mark.benchmark(group="C-FRAG-same-engine")
def test_engine_on_fragmentation(benchmark, n_words):
    """The paper's claim, like-for-like: same query engine, flat input."""
    flat_goddag = _flat_goddag(n_words)
    flat_goddag.span_index()
    result = benchmark(
        lambda: sorted(evaluate_query(flat_goddag, ENGINE_FLAT_QUERY)))
    goddag = goddag_at_size(n_words)
    assert result == sorted(evaluate_query(goddag, GODDAG_LINES_QUERY))
    record(f"C-FRAG same-engine n={n_words}", "CLAIM HOLDS",
           "value-join reassembly on the flat encoding vs structural "
           "extended axes — see the C-FRAG-same-engine timing group")


@pytest.mark.parametrize("n_words", SIZES)
@pytest.mark.benchmark(group="C-FRAG-encode")
def test_fragmentation_encoding_cost(benchmark, n_words):
    """The up-front cost of producing the fragmentation encoding."""
    document = corpus_at_size(n_words)
    flat = benchmark(fragment_document, document)
    fragments = sum(1 for _ in flat.root.iter_elements())
    originals = sum(
        sum(1 for _ in document[h].document.root.iter_elements())
        for h in document.hierarchy_names)
    record(f"C-FRAG blowup n={n_words}", "SERIES",
           f"{originals} elements become {fragments} fragments "
           f"({fragments / originals:.2f}x)")
