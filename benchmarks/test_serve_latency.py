"""S-SERVE — query-service latency over the HTTP boundary.

The tentpole claim of ISSUE 8 (DESIGN.md §14): serving a query over
HTTP — parse, admission, thread-pool dispatch, snapshot pin, JSON
envelope — adds bounded overhead on top of the direct
``snapshot.query()`` call, and a fixed-concurrency client fleet
completes a mixed probe workload with zero errors.  Shared CI runners
damp the floor through ``REPRO_BENCH_MAX_SERVE_OVERHEAD_MS``.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from repro.bench import SCALING_SIZES, corpus_at_size
from repro.server import ServerConfig, ServerHandle
from repro.store import DocumentStore

from conftest import record

LARGEST = SCALING_SIZES[-1]

#: per-request overhead budget for the whole HTTP layer (milliseconds)
MAX_OVERHEAD_MS = float(
    os.environ.get("REPRO_BENCH_MAX_SERVE_OVERHEAD_MS", "25.0"))

POINT = "count(/descendant::w)"
SCAN = "count(/descendant::w[overlapping::line])"
CONCURRENCY = 4
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "40"))


def median_ms(function, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        function()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    return samples[len(samples) // 2] * 1e3


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-bench")
    store = DocumentStore.init(root / "catalog")
    store.add("doc", corpus_at_size(LARGEST))
    with ServerHandle(store, ServerConfig()) as handle:
        yield handle, store
    store.close()


def http_get(handle: ServerHandle, connection, path: str) -> bytes:
    connection.request("GET", path)
    reply = connection.getresponse()
    body = reply.read()
    assert reply.status == 200, body
    return body


def test_http_results_match_direct_store(served):
    """Parity first: the HTTP envelope carries exactly the items the
    pinned snapshot produces."""
    handle, store = served
    snapshot = store.snapshot("doc")
    connection = http.client.HTTPConnection(handle.host, handle.port,
                                            timeout=120)
    for probe in (POINT, SCAN):
        body = http_get(handle, connection,
                        f"/query?name=doc&q={probe}")
        payload = json.loads(body)
        assert payload["items"] == snapshot.query(probe).strings()
        assert payload["snapshot_version"] == snapshot.version
    connection.close()
    record("S-SERVE parity", "PASS",
           f"n={LARGEST}: HTTP envelope matches snapshot.query() on "
           f"2 probes")


def test_http_overhead_bounded(served):
    handle, store = served
    snapshot = store.snapshot("doc")
    connection = http.client.HTTPConnection(handle.host, handle.port,
                                            timeout=120)
    path = f"/query?name=doc&q={POINT}"
    http_get(handle, connection, path)  # warm plans + connection
    snapshot.query(POINT)
    http_ms = median_ms(
        lambda: http_get(handle, connection, path), REQUESTS)
    direct_ms = median_ms(lambda: snapshot.query(POINT), REQUESTS)
    connection.close()
    overhead = http_ms - direct_ms
    record("S-SERVE overhead",
           "PASS" if overhead <= MAX_OVERHEAD_MS else "FAIL",
           f"n={LARGEST}: direct {direct_ms:.2f} ms, http "
           f"{http_ms:.2f} ms (+{overhead:.2f} ms)")
    assert overhead <= MAX_OVERHEAD_MS, (
        f"HTTP layer adds {overhead:.2f} ms per request, over the "
        f"{MAX_OVERHEAD_MS} ms budget "
        f"(direct {direct_ms:.2f} ms, http {http_ms:.2f} ms)")


def test_fixed_concurrency_fleet_zero_errors(served):
    """The load-generator shape of BENCH_serve.json's throughput leaf:
    a fixed-concurrency fleet, every response a 200, counters clean."""
    handle, _store = served
    errors: list[str] = []
    completed: list[int] = []
    lock = threading.Lock()
    paths = [f"/query?name=doc&q={POINT}",
             f"/query?name=doc&q={SCAN}",
             "/query?name=doc&q=/descendant::w&limit=10",
             "/statz"]

    def client(identity: int) -> None:
        connection = http.client.HTTPConnection(
            handle.host, handle.port, timeout=120)
        try:
            for index in range(REQUESTS):
                path = paths[(identity + index) % len(paths)]
                connection.request("GET", path)
                reply = connection.getresponse()
                reply.read()
                if reply.status != 200:
                    with lock:
                        errors.append(f"{path}: {reply.status}")
                    return
            with lock:
                completed.append(identity)
        finally:
            connection.close()

    workers = [threading.Thread(target=client, args=(identity,))
               for identity in range(CONCURRENCY)]
    begin = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=300)
    elapsed = time.perf_counter() - begin
    assert not errors, errors[:3]
    assert sorted(completed) == list(range(CONCURRENCY))
    stats = handle.get_json("/statz")[1]
    assert stats["inflight"] == 0
    assert stats["queued"] == 0
    total = CONCURRENCY * REQUESTS
    record("S-SERVE fleet", "PASS",
           f"{CONCURRENCY} clients x {REQUESTS} requests in "
           f"{elapsed:.2f} s ({total / elapsed:.0f} req/s), 0 errors")
