"""Emit the perf-trajectory files ``BENCH_axes.json`` +
``BENCH_queries.json`` + ``BENCH_updates.json`` + ``BENCH_store.json``
+ ``BENCH_joins.json``.

Times the headline series — S-AXES (axis evaluation), S-ANALYZE
(the ``analyze-string`` temporary-hierarchy lifecycle), S-BUILD
(KyGODDAG + SpanIndex construction) — into ``BENCH_axes.json``, the
end-to-end §4 query workload (S-QUERIES: legacy evaluator vs the
compiled pipeline, per query and total) into ``BENCH_queries.json``,
the transactional update workload (S-UPDATE: incremental apply vs
rebuild-per-update, DESIGN.md §9) into ``BENCH_updates.json``, the
store cold-load path (S-STORE: ``.mhxb`` mmap load vs XML re-parse +
index build, DESIGN.md §10) into ``BENCH_store.json``, and the
extended-axis interval-join workload (S-JOINS: batched sorted-array
joins vs per-node span arithmetic, DESIGN.md §11) into
``BENCH_joins.json``, and the sharded-corpus scatter-gather workload
(S-SHARD: serial vs pooled ``collection()`` dispatch and manifest
shard pruning, DESIGN.md §13) into ``BENCH_shard.json``, and the
query-service HTTP workload (S-SERVE: per-request latency percentiles
and fixed-concurrency throughput, DESIGN.md §14) into
``BENCH_serve.json``, and the streaming bulk-ingest workload
(S-INGEST: DOM-free ``stream_save`` vs parse + ``save_engine``,
DESIGN.md §15) into ``BENCH_ingest.json``, and the cost-based-planning
workload (S-PLAN: costed plans vs the mechanical lowering on a skewed
corpus, DESIGN.md §16) into ``BENCH_plan.json``.  The CI
bench-regression wall (``benchmarks/check_regression.py``) diffs fresh
runs against all nine checked-in files.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py [--quick] \
        [--out BENCH_axes.json] [--queries-out BENCH_queries.json] \
        [--updates-out BENCH_updates.json] \
        [--store-out BENCH_store.json] \
        [--joins-out BENCH_joins.json] \
        [--shard-out BENCH_shard.json] \
        [--serve-out BENCH_serve.json] \
        [--ingest-out BENCH_ingest.json] \
        [--plan-out BENCH_plan.json] [--size 6400] \
        [--shard-size 64000] [--workers 4] [--ingest-size N] \
        [--plan-size 2000]

``--quick`` cuts the repeat counts for CI smoke runs; the checked-in
files are produced by a full run on a quiet machine.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import SCALING_SIZES, corpus_at_size, goddag_at_size  # noqa: E402
from repro.bench.workloads import BENCH_SEED  # noqa: E402
from repro.core.goddag import KyGoddag, evaluate_axis  # noqa: E402
from repro.core.runtime import evaluate_query  # noqa: E402


def median_ns(function, repeats: int, collect_between: bool = False) -> int:
    """Median wall time of ``function()`` in nanoseconds.

    ``collect_between`` runs ``gc.collect()`` before each sample
    (outside the timed window) — for workloads that churn enough
    objects that one run's garbage would bill the next.
    """
    import gc

    samples = []
    for _ in range(repeats):
        if collect_between:
            gc.collect()
        begin = time.perf_counter_ns()
        function()
        samples.append(time.perf_counter_ns() - begin)
    return int(statistics.median(samples))


def bench_axes(size: int, repeats: int) -> dict[str, int]:
    goddag = goddag_at_size(size)
    goddag.span_index()
    words = list(goddag.elements("w"))
    mid = words[len(words) // 2]
    out: dict[str, int] = {}
    for axis in ("descendant", "following", "preceding",
                 "xdescendant", "overlapping"):
        out[axis] = median_ns(
            lambda axis=axis: evaluate_axis(goddag, axis, mid), repeats)
    out["descendant-from-root"] = median_ns(
        lambda: evaluate_axis(goddag, "descendant", goddag.root),
        max(repeats // 4, 3))
    return out


def bench_analyze(size: int, repeats: int) -> dict[str, int]:
    goddag = goddag_at_size(size)
    goddag.span_index()
    return {
        "analyze-string-query": median_ns(
            lambda: evaluate_query(goddag, 'analyze-string(/, "si")'),
            repeats),
    }


def bench_build(size: int, repeats: int) -> dict[str, int]:
    corpus = corpus_at_size(size)

    def build() -> None:
        KyGoddag.build(corpus).span_index()

    return {"goddag-and-index": median_ns(build, repeats)}


def bench_queries(size: int, repeats: int) -> dict:
    """End-to-end §4 workload: legacy evaluator vs compiled pipeline."""
    from repro.api import Engine
    from repro.bench.workloads import paper_query_workload

    document = corpus_at_size(size)
    pipeline = Engine(document)
    legacy = Engine(document, use_pipeline=False)
    pipeline.goddag.span_index()
    legacy.goddag.span_index()
    workload = paper_query_workload()
    for _query_id, query in workload:  # warm plan cache + lazy indexes
        pipeline.query(query)
        legacy.query(query)
    per_query: dict[str, dict[str, int]] = {}
    for query_id, query in workload:
        per_query[query_id] = {
            "legacy-evaluator": median_ns(
                lambda query=query: legacy.query(query), repeats),
            "pipeline-warm": median_ns(
                lambda query=query: pipeline.query(query), repeats),
        }
    total = {
        "legacy-evaluator": sum(row["legacy-evaluator"]
                                for row in per_query.values()),
        "pipeline-warm": sum(row["pipeline-warm"]
                             for row in per_query.values()),
    }
    total["speedup"] = round(
        total["legacy-evaluator"] / total["pipeline-warm"], 2)
    return {"per_query": per_query, "workload_total": total}


def bench_updates(size: int, repeats: int) -> dict:
    """S-UPDATE: incremental engine apply vs rebuild-per-update.

    Both workloads are involutions (they return the document to its
    starting state), so repeated timing runs stay comparable.  Uses the
    same statement lists as ``benchmarks/test_update_throughput.py``.
    """
    from repro.api import Engine
    from repro.cmh import MultihierarchicalDocument
    from repro.core.update import RebuildOracle
    from test_update_throughput import MARKUP_STATEMENTS, TEXT_STATEMENTS

    def private_corpus() -> MultihierarchicalDocument:
        # Never mutate the memoized corpus_at_size instance in place.
        shared = corpus_at_size(size)
        return MultihierarchicalDocument.from_xml(
            shared.text, {name: hierarchy.to_xml() for name, hierarchy
                          in shared.hierarchies.items()})

    engine = Engine(private_corpus())
    engine.goddag.span_index()
    oracle = RebuildOracle(private_corpus())

    def run(statements, incremental: bool) -> None:
        if incremental:
            for statement in statements:
                engine.update(statement, check=False)
        else:
            for statement in statements:
                oracle.apply(statement)

    out: dict = {}
    for label, statements in (("markup-ops", MARKUP_STATEMENTS),
                              ("text-ops", TEXT_STATEMENTS)):
        run(statements, True)   # warm lazy state on both sides
        run(statements, False)
        incremental = median_ns(lambda s=statements: run(s, True),
                                repeats)
        rebuild = median_ns(lambda s=statements: run(s, False),
                            max(repeats // 2, 3))
        out[label] = {
            "statements": len(statements),
            "incremental-engine": incremental,
            "rebuild-per-update": rebuild,
            "speedup": round(rebuild / incremental, 2),
        }
    return out


#: The S-JOINS workload: one entry per extended-axis step shape —
#: overlap (the singallice word/line crossings), containment both ways,
#: and the boundary axes — each evaluated over *every* context element
#: of the named kind (the set-at-a-time shape the join engine targets).
JOIN_WORKLOAD = (
    ("overlap-w-line", "w", "overlapping", "line"),
    ("overlap-line-w", "line", "overlapping", "w"),
    ("containment-dmg-w", "dmg", "xdescendant", "w"),
    ("containment-w-vline", "w", "xancestor", "vline"),
    ("boundary-dmg-res", "dmg", "xfollowing", "res"),
    ("boundary-res-w", "res", "xpreceding", "w"),
)


def join_step_contexts(goddag, element: str) -> list:
    """All elements of one name — the step's whole context sequence."""
    return [node for node in goddag.elements(element)]


def bench_joins(size: int, repeats: int) -> dict:
    """S-JOINS: batched interval joins vs the per-node extended axes.

    Both sides evaluate identical steps over identical context sets —
    ``join_axis_batch`` (one sorted-array join per step, DESIGN.md §11)
    against ``evaluate_axis_batch`` (one span-arithmetic call per
    context node plus a Python-object merge, the pre-PR-5 hot path).
    ``benchmarks/test_extended_axis_joins.py`` asserts the two sides
    stay element-for-element identical and gates the speedup.
    """
    from repro.core.goddag import evaluate_axis_batch, join_axis_batch

    goddag = goddag_at_size(size)
    goddag.span_index()
    steps = [(label, join_step_contexts(goddag, element), axis, name)
             for label, element, axis, name in JOIN_WORKLOAD]
    out: dict = {}
    batched_total = 0
    pernode_total = 0
    for label, contexts, axis, name in steps:
        batched = median_ns(
            lambda c=contexts, a=axis, n=name: join_axis_batch(
                goddag, a, c, n, skip_leaves=True), repeats)
        pernode = median_ns(
            lambda c=contexts, a=axis, n=name: evaluate_axis_batch(
                goddag, a, c, n, skip_leaves=True),
            max(repeats // 2, 3))
        batched_total += batched
        pernode_total += pernode
        out[label] = {
            "contexts": len(contexts),
            "batched-join": batched,
            "per-node": pernode,
            "speedup": round(pernode / batched, 2),
        }
    out["workload_total"] = {
        "batched-join": batched_total,
        "per-node": pernode_total,
        "speedup": round(pernode_total / batched_total, 2),
    }
    return out


def bench_store(size: int, repeats: int) -> dict:
    """S-STORE: ``.mhxb`` mmap cold load vs XML re-parse + index build.

    Matches ``benchmarks/test_store_coldload.py``: each sample is a
    full cold start — open the container, reconstruct (or rebuild) the
    engine, answer one probe query.
    """
    import shutil
    import tempfile

    from repro.api import Engine, save_mhx

    probe = "count(/descendant::w)"
    corpus = corpus_at_size(size)
    engine = Engine(corpus)
    engine.goddag.span_index()
    root = Path(tempfile.mkdtemp(prefix="mhxq-bench-store-"))
    mhx = root / "corpus.mhx"
    mhxb = root / "corpus.mhxb"
    save_mhx(corpus, mhx)
    engine.save_mhxb(mhxb)
    try:
        return _bench_store_timed(mhx, mhxb, probe, repeats)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _bench_store_timed(mhx: Path, mhxb: Path, probe: str,
                       repeats: int) -> dict:
    from repro.api import Engine, load_mhx

    def cold_mhxb() -> None:
        Engine.from_mhxb(mhxb).query(probe)

    def cold_xml() -> None:
        fresh = Engine(load_mhx(mhx))
        fresh.goddag.span_index()
        fresh.query(probe)

    cold_mhxb()  # fault the containers into the page cache
    cold_xml()
    # cold loads churn ~10^5 objects: collect between samples so one
    # run's garbage doesn't bill the next, late in a long bench process
    binary = median_ns(cold_mhxb, repeats, collect_between=True)
    xml = median_ns(cold_xml, max(repeats // 2, 3),
                    collect_between=True)
    return {
        "cold-load-first-query": {
            "mhxb-mmap": binary,
            "xml-reparse-rebuild": xml,
            "speedup": round(xml / binary, 2),
        },
    }


def bench_durability(size: int, repeats: int) -> dict:
    """S-STORE durability: per-commit cost of the fsync policies.

    Times a ``compact("doc")`` cycle — serialize, atomic rename,
    manifest commit, plus whatever fsyncs the policy demands — under
    each durability mode: ``off`` (rename atomicity only), ``batch``
    (deferred syncs coalesced by the cycle's trailing ``sync()``, and
    the manifest fast path that skips rewriting an unchanged core),
    and ``full`` (fsync file + directory inline on every write).

    An earlier incarnation timed ``store.update()`` instead, and the
    numbers inverted (off slower than full): ``update`` forks the
    engine before persisting, so every sample was dominated by a DOM
    clone + GODDAG rebuild that dwarfed the I/O under test and left
    the policy deltas inside scheduler noise.  ``compact`` hits
    ``_persist`` with no fork, so the sample *is* the commit path.
    The ``speedup`` leaf is full/batch — what sync coalescing buys
    over fsync-per-write.  Both sides of that ratio are fsync-bound,
    so runner-to-runner fsync variance largely cancels and the leaf
    can ride the regression wall; off/batch would shrink on any
    slow-fsync runner and flake it
    (``benchmarks/test_store_durability.py`` gates the policies
    directly).
    """
    import shutil
    import tempfile

    from repro.store import DocumentStore

    corpus = corpus_at_size(size)
    out: dict = {}
    # commit-path samples are cheap without the fork: double the
    # repeats to pull the median clear of fsync scheduling noise
    commit_repeats = repeats * 2 + 1
    for mode in ("off", "batch", "full"):
        root = Path(tempfile.mkdtemp(prefix=f"mhxq-bench-dur-{mode}-"))
        try:
            store = DocumentStore.init(root, durability=mode)
            store.add("doc", corpus)

            def commit() -> None:
                store.compact("doc")

            commit()  # warm the snapshot + serializer caches
            out[f"{mode}-commit"] = median_ns(commit, commit_repeats)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    out["speedup"] = round(out["full-commit"] / out["batch-commit"], 2)
    return out


#: The S-SHARD pruning corpus fuses a small heavily-damaged head onto a
#: large pristine body: ``dmg`` cardinality is zero outside the head, so
#: a damage-anchored query prunes all body shards from the manifest
#: statistics alone.
SHARD_COUNT = 8


def _shard_corpus(n_words: int):
    """Damaged head + clean body, fused into one corpus document."""
    from repro.corpus.generator import GeneratorConfig, generate_document
    from repro.store import fuse_documents

    head = generate_document(GeneratorConfig(
        n_words=max(n_words // 16, 200), seed=BENCH_SEED,
        damage_rate=0.3, restoration_rate=0.2))
    body = generate_document(GeneratorConfig(
        n_words=n_words, seed=BENCH_SEED + 1,
        damage_rate=0.0, restoration_rate=0.0))
    return fuse_documents([head, body])


def bench_shard(n_words: int, repeats: int, workers: int) -> dict:
    """S-SHARD: scatter-gather ``collection()`` over a sharded corpus.

    Three comparisons on one corpus (DESIGN.md §13):

    * ``count-w-overlap-line`` — a shard-local semi-join over every
      word, serial in-process vs the ``workers``-way pool vs the same
      query on one unsharded engine.  The serial/pool ratio is
      recorded as ``parallel-ratio``, deliberately *not* ``speedup``:
      parallel gain is only physical with ≥ ``workers`` cores, so a
      single-core baseline would set a regression-wall floor that says
      nothing about the code.  The config records ``cpus`` and
      ``benchmarks/test_shard_scaling.py`` gates the ratio CPU-aware.
    * ``scatter-w-in-dmg`` — a node-returning scatter (okey merge +
      serialization in the sample), pruned vs unpruned.
    * ``prune-dmg-semijoin`` — manifest pruning: the damage-anchored
      query only dispatches to shards whose ``dmg`` cardinality is
      non-zero, skipping the full word scan everywhere else.  Its
      ``speedup`` (unpruned/pruned) is work-reduction, measurable on
      any machine.
    """
    import os
    import shutil
    import tempfile

    from repro.api import Engine
    from repro.store import DocumentStore

    corpus = _shard_corpus(n_words)
    root = Path(tempfile.mkdtemp(prefix="mhxq-bench-shard-"))
    out: dict = {"config": {
        "n_words": n_words, "shards": SHARD_COUNT, "workers": workers,
        "cpus": len(os.sched_getaffinity(0)),
    }}
    overlap = 'count(collection("c")/descendant::w[overlapping::line])'
    scatter = 'collection("c")/descendant::dmg/xdescendant::w'
    prune = 'count(collection("c")/descendant::w[overlapping::dmg])'
    try:
        store = DocumentStore.init(root / "catalog")
        stats = store.add_corpus("c", corpus, shards=SHARD_COUNT)
        unsharded = Engine(corpus)
        unsharded.goddag.span_index()
        oracle = "count(/descendant::w[overlapping::line])"
        for text in (overlap, scatter, prune):  # warm engines + plans
            store.cquery(text)
        unsharded.query(oracle)
        pool_warm = store.cquery(overlap, workers=workers)
        serial = median_ns(lambda: store.cquery(overlap), repeats)
        pooled = median_ns(
            lambda: store.cquery(overlap, workers=workers), repeats)
        out["count-w-overlap-line"] = {
            "serial-1worker": serial,
            f"pool-{workers}workers": pooled,
            "unsharded-engine": median_ns(
                lambda: unsharded.query(oracle), repeats),
            "parallel-ratio": round(serial / pooled, 2),
        }
        out["scatter-w-in-dmg"] = {
            "pruned": median_ns(lambda: store.cquery(scatter), repeats),
            "unpruned": median_ns(
                lambda: store.cquery(scatter, prune=False), repeats),
        }
        pruned_result = store.cquery(prune)
        out["prune-dmg-semijoin"] = {
            "shards-pruned": pruned_result.shards_pruned,
            "shards-total": pruned_result.shards_total,
            "pruned": median_ns(lambda: store.cquery(prune), repeats),
            "unpruned": median_ns(
                lambda: store.cquery(prune, prune=False), repeats),
        }
        out["prune-dmg-semijoin"]["speedup"] = round(
            out["prune-dmg-semijoin"]["unpruned"]
            / out["prune-dmg-semijoin"]["pruned"], 2)
        out["config"]["corpus_words"] = stats.words
        assert pool_warm.workers == workers
        store.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return out


#: The S-SERVE workload: per-request latency percentiles over the
#: query service's HTTP boundary.  Each probe dominates its own layer —
#: ``point-count`` the admission/dispatch overhead, ``overlap-count``
#: the span-index read path, ``paginated-page`` and ``streamed-page``
#: full-result serialization through the pagination and chunked paths.
SERVE_PROBES = (
    ("point-count", "/query?name=doc&q=count(/descendant::w)"),
    ("overlap-count",
     "/query?name=doc&q=count(/descendant::w[overlapping::line])"),
    ("paginated-page", "/query?name=doc&q=/descendant::w&limit=25"),
    ("streamed-page",
     "/query?name=doc&q=/descendant::w&stream=1&limit=200"),
)


def _percentiles(samples: list[int]) -> dict[str, int]:
    import math

    samples = sorted(samples)

    def at(q: float) -> int:
        index = max(0, math.ceil(q * len(samples)) - 1)
        return samples[index]

    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


def bench_serve(size: int, requests: int, concurrency: int) -> dict:
    """S-SERVE: query-service latency + throughput (DESIGN.md §14).

    One embedded server over the bench corpus; a keep-alive client
    per series records per-request wall times for the percentile
    leaves, then ``concurrency`` clients hammer the point query for
    the aggregate-throughput leaf.  Throughput is recorded as
    ``ns-per-request`` (a *time* leaf, lower = better) so the wall's
    time semantics apply directly — raw requests/second would read a
    faster machine as a regression.
    """
    import http.client
    import shutil
    import tempfile
    import threading

    from repro.server import ServerConfig, ServerHandle
    from repro.store import DocumentStore

    corpus = corpus_at_size(size)
    root = Path(tempfile.mkdtemp(prefix="mhxq-bench-serve-"))
    out: dict = {"config": {
        "n_words": size, "requests": requests,
        "concurrency": concurrency,
    }}
    try:
        store = DocumentStore.init(root / "catalog")
        store.add("doc", corpus)
        with ServerHandle(store, ServerConfig()) as handle:
            def series(path: str) -> dict[str, int]:
                connection = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=120)
                samples = []
                for round_index in range(requests + 3):
                    begin = time.perf_counter_ns()
                    connection.request("GET", path)
                    connection.getresponse().read()
                    if round_index >= 3:  # 3 warm-up rounds
                        samples.append(
                            time.perf_counter_ns() - begin)
                connection.close()
                return _percentiles(samples)

            for label, path in SERVE_PROBES:
                out[label] = series(path)

            per_client = max(requests // 2, 10)
            point = SERVE_PROBES[0][1]
            barrier = threading.Barrier(concurrency + 1)

            def client() -> None:
                connection = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=120)
                connection.request("GET", point)  # warm, then sync
                connection.getresponse().read()
                barrier.wait()
                for _request in range(per_client):
                    connection.request("GET", point)
                    connection.getresponse().read()
                connection.close()

            workers = [threading.Thread(target=client)
                       for _client in range(concurrency)]
            for worker in workers:
                worker.start()
            barrier.wait()
            begin = time.perf_counter_ns()
            for worker in workers:
                worker.join()
            elapsed = time.perf_counter_ns() - begin
            out["throughput"] = {"ns-per-request": int(
                elapsed / (concurrency * per_client))}
        store.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return out


#: The S-INGEST sizes are identical in quick and full runs (only the
#: repeat counts differ) so the regression wall never diffs against a
#: missing metric; the nightly ≥100k-word sweep overrides via
#: ``--ingest-only --ingest-size``.
INGEST_SIZES = (400, 1600, 6400)


def bench_ingest(sizes: tuple[int, ...], repeats: int) -> dict:
    """S-INGEST: streaming ``stream_save`` vs the DOM pipeline.

    Both sides start from identical XML encoding strings and finish
    with a complete ``.mhxb`` container — parse, node tables, okeys,
    SpanIndex permutations, partition multisets, pack.  The outputs
    are byte-identical (``tests/test_streaming.py``), so the timing
    delta is pure pipeline overhead: DOM node churn + ``KyGoddag``
    construction vs the one-pass table builder (DESIGN.md §15).
    ``benchmarks/test_ingest_throughput.py`` gates the n=6400 speedup.
    The higher-is-better words/sec rates land under ``config`` where
    the regression wall skips them; the wall rides the ns leaves and
    the ``speedup`` ratio.
    """
    import shutil
    import tempfile

    from repro.api import Engine
    from repro.cmh import MultihierarchicalDocument
    from repro.markup.streaming import stream_save
    from repro.store.mhxb import save_engine

    root = Path(tempfile.mkdtemp(prefix="mhxq-bench-ingest-"))
    out: dict = {}
    rates: dict[str, dict[str, int]] = {}
    try:
        for size in sizes:
            corpus = corpus_at_size(size)
            text = corpus.text
            sources = {name: hierarchy.to_xml() for name, hierarchy
                       in corpus.hierarchies.items()}
            words = len(text.split())
            stream_path = root / f"stream-{size}.mhxb"
            dom_path = root / f"dom-{size}.mhxb"

            def streaming() -> None:
                stream_save(text, sources, stream_path)

            def dom_pipeline() -> None:
                document = MultihierarchicalDocument.from_xml(
                    text, sources)
                save_engine(Engine(document), dom_path)

            streaming()  # warm both paths (interning, plan caches)
            dom_pipeline()
            assert stream_path.read_bytes() == dom_path.read_bytes()
            stream_ns = median_ns(streaming, repeats,
                                  collect_between=True)
            dom_ns = median_ns(dom_pipeline, max(repeats // 2, 3),
                               collect_between=True)
            out[f"n{size}"] = {
                "streaming": stream_ns,
                "dom-pipeline": dom_ns,
                "speedup": round(dom_ns / stream_ns, 2),
            }
            rates[f"n{size}"] = {
                "words": words,
                "streaming": int(words / (stream_ns / 1e9)),
                "dom-pipeline": int(words / (dom_ns / 1e9)),
            }
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {"per_size": out, "words_per_sec": rates}


#: The S-PLAN workload (DESIGN.md §16): chains where the cost pass
#: changes the physical plan — two reversible join pairs whose context
#: side is ~50× the target side (reversal scans the small side and
#: probes back), a commutative semi-join conjunction (most selective
#: probe first), and a control query no transform applies to.
PLAN_WORKLOAD = (
    ("reverse-containment", "/descendant::w/xancestor::dmg"),
    ("reverse-overlap", "/descendant::w/overlapping::dmg"),
    ("predicate-reorder",
     "/descendant::w[overlapping::line][overlapping::dmg]"),
    ("control-count", "count(/descendant::w)"),
)

#: word count of the skewed S-PLAN corpus — identical in quick and
#: full runs (only repeats differ) so the wall never diffs against a
#: missing or rescaled metric
PLAN_WORDS = 2000


def _plan_corpus(n_words: int):
    """Skewed generator config: sparse damage, words crossing
    hierarchy boundaries — the cardinality asymmetry the cost model
    exploits."""
    from repro.corpus.generator import GeneratorConfig, generate_document

    return generate_document(GeneratorConfig(
        n_words=n_words, seed=11, damage_rate=0.02,
        restoration_rate=0.05, hyphenation_rate=0.2,
        boundary_cross_rate=0.5))


def bench_plan(n_words: int, repeats: int) -> dict:
    """S-PLAN: cost-based plans vs the mechanical lowering.

    Two engines over one skewed corpus — ``use_cost=True`` against
    ``use_cost=False`` — evaluate identical queries warm (plans
    compiled, span index built).  ``benchmarks/test_plan_cost.py``
    asserts the two sides stay item-for-item identical and gates the
    speedups; the ``speedup`` leaves ride the regression wall's ratio
    band.
    """
    from repro.api import Engine

    document = _plan_corpus(n_words)
    costed = Engine(document)
    mechanical = Engine(document, use_cost=False)
    costed.goddag.span_index()
    mechanical.goddag.span_index()
    out: dict = {}
    for label, query in PLAN_WORKLOAD:
        costed.query(query)  # warm plan cache + lazy indexes
        mechanical.query(query)
        costed_ns = median_ns(
            lambda q=query: costed.query(q), repeats)
        mechanical_ns = median_ns(
            lambda q=query: mechanical.query(q), repeats)
        out[label] = {
            "costed": costed_ns,
            "mechanical": mechanical_ns,
            "speedup": round(mechanical_ns / costed_ns, 2),
        }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_axes.json"))
    parser.add_argument("--queries-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_queries.json"))
    parser.add_argument("--updates-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_updates.json"))
    parser.add_argument("--store-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_store.json"))
    parser.add_argument("--joins-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_joins.json"))
    parser.add_argument("--shard-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_shard.json"))
    parser.add_argument("--serve-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_serve.json"))
    parser.add_argument("--ingest-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_ingest.json"))
    parser.add_argument("--plan-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_plan.json"))
    parser.add_argument("--size", type=int, default=SCALING_SIZES[-1])
    parser.add_argument("--shard-size", type=int, default=None,
                        help="corpus words for the shard series "
                             "(default 64000, or 4000 with --quick)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool width for the shard series")
    parser.add_argument("--shard-only", action="store_true",
                        help="emit only the S-SHARD series (the "
                             "nightly shard-scale worker sweep)")
    parser.add_argument("--serve-only", action="store_true",
                        help="emit only the S-SERVE series (the "
                             "query-service latency/throughput run)")
    parser.add_argument("--ingest-only", action="store_true",
                        help="emit only the S-INGEST series (the "
                             "nightly bulk-ingest scale sweep)")
    parser.add_argument("--plan-only", action="store_true",
                        help="emit only the S-PLAN series (cost-based "
                             "planning vs mechanical lowering)")
    parser.add_argument("--plan-size", type=int, default=PLAN_WORDS,
                        help="corpus words for the S-PLAN series "
                             "(the nightly plan-scale sweep overrides)")
    parser.add_argument("--ingest-size", type=int, default=None,
                        help="replace the standard S-INGEST sizes "
                             "with one large corpus (nightly runs "
                             "use >= 100000 words)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (CI smoke run)")
    args = parser.parse_args(argv)
    repeats = 5 if args.quick else 41
    build_repeats = 3 if args.quick else 11
    query_repeats = 3 if args.quick else 9
    shard_size = args.shard_size or (4000 if args.quick else 64000)
    shard_repeats = 3 if args.quick else 7
    if args.shard_only:
        emit_shard(args, shard_size, shard_repeats)
        return 0
    if args.serve_only:
        emit_serve(args)
        return 0
    if args.ingest_only:
        emit_ingest(args, query_repeats)
        return 0
    if args.plan_only:
        emit_plan(args, query_repeats)
        return 0
    payload = {
        "schema": "repro-bench/1",
        "series": "standard-axes-rewrite",
        "config": {"n_words": args.size, "seed": BENCH_SEED,
                   "repeats": repeats, "python": sys.version.split()[0]},
        "median_ns_per_op": {
            "S-AXES": bench_axes(args.size, repeats),
            "S-ANALYZE": bench_analyze(args.size,
                                       max(repeats // 4, 3)),
            "S-BUILD": bench_build(args.size, build_repeats),
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    queries_payload = {
        "schema": "repro-bench/1",
        "series": "query-compilation-pipeline",
        "config": {"n_words": args.size, "seed": BENCH_SEED,
                   "repeats": query_repeats,
                   "python": sys.version.split()[0]},
        "median_ns_per_query": bench_queries(args.size, query_repeats),
    }
    Path(args.queries_out).write_text(
        json.dumps(queries_payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(queries_payload, indent=2, sort_keys=True))
    updates_payload = {
        "schema": "repro-bench/1",
        "series": "transactional-updates",
        "config": {"n_words": args.size, "seed": BENCH_SEED,
                   "repeats": query_repeats,
                   "python": sys.version.split()[0]},
        "median_ns_per_workload": bench_updates(args.size, query_repeats),
    }
    Path(args.updates_out).write_text(
        json.dumps(updates_payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(updates_payload, indent=2, sort_keys=True))
    store_payload = {
        "schema": "repro-bench/1",
        "series": "store-coldload",
        "config": {"n_words": args.size, "seed": BENCH_SEED,
                   "repeats": query_repeats,
                   "python": sys.version.split()[0]},
        "median_ns_per_coldload": bench_store(args.size, query_repeats),
        "median_ns_per_commit": {
            "durability": bench_durability(args.size, query_repeats),
        },
    }
    Path(args.store_out).write_text(
        json.dumps(store_payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(store_payload, indent=2, sort_keys=True))
    joins_payload = {
        "schema": "repro-bench/1",
        "series": "extended-axis-joins",
        "config": {"n_words": args.size, "seed": BENCH_SEED,
                   "repeats": repeats,
                   "python": sys.version.split()[0]},
        "median_ns_per_step": bench_joins(args.size, repeats),
    }
    Path(args.joins_out).write_text(
        json.dumps(joins_payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(joins_payload, indent=2, sort_keys=True))
    emit_shard(args, shard_size, shard_repeats)
    emit_serve(args)
    emit_ingest(args, query_repeats)
    emit_plan(args, query_repeats)
    return 0


def emit_plan(args, repeats: int) -> None:
    plan_payload = {
        "schema": "repro-bench/1",
        "series": "cost-based-planning",
        "config": {"n_words": args.plan_size, "seed": 11,
                   "repeats": repeats,
                   "python": sys.version.split()[0]},
        "median_ns_per_query": bench_plan(args.plan_size, repeats),
    }
    Path(args.plan_out).write_text(
        json.dumps(plan_payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(plan_payload, indent=2, sort_keys=True))


def emit_ingest(args, repeats: int) -> None:
    sizes = ((args.ingest_size,) if args.ingest_size
             else INGEST_SIZES)
    series = bench_ingest(sizes, repeats)
    ingest_payload = {
        "schema": "repro-bench/1",
        "series": "streaming-ingest",
        "config": {"sizes": list(sizes), "seed": BENCH_SEED,
                   "repeats": repeats,
                   "python": sys.version.split()[0],
                   "words_per_sec": series["words_per_sec"]},
        "median_ns_per_ingest": series["per_size"],
    }
    Path(args.ingest_out).write_text(
        json.dumps(ingest_payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(ingest_payload, indent=2, sort_keys=True))


def emit_serve(args) -> None:
    serve_requests = 30 if args.quick else 200
    serve_series = bench_serve(args.size, serve_requests,
                               concurrency=4)
    serve_payload = {
        "schema": "repro-bench/1",
        "series": "query-service-latency",
        "config": {**serve_series.pop("config"), "seed": BENCH_SEED,
                   "python": sys.version.split()[0]},
        "median_ns_per_request": serve_series,
    }
    Path(args.serve_out).write_text(
        json.dumps(serve_payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(serve_payload, indent=2, sort_keys=True))


def emit_shard(args, shard_size: int, shard_repeats: int) -> None:
    shard_series = bench_shard(shard_size, shard_repeats, args.workers)
    shard_payload = {
        "schema": "repro-bench/1",
        "series": "sharded-corpus-scatter-gather",
        "config": {**shard_series.pop("config"), "seed": BENCH_SEED,
                   "repeats": shard_repeats,
                   "python": sys.version.split()[0]},
        "median_ns_per_cquery": shard_series,
    }
    Path(args.shard_out).write_text(
        json.dumps(shard_payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(shard_payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    raise SystemExit(main())
