"""S-ANALYZE — analyze-string scaling.

Each call creates, repartitions, and tears down a temporary hierarchy
(Definition 4); this series measures that full lifecycle as the
document grows, plus the per-match cost on a fixed document.
"""

from __future__ import annotations

import pytest

from repro.bench import SCALING_SIZES, goddag_at_size
from repro.core.runtime import evaluate_query, serialize_items

from conftest import record

QUERY = 'analyze-string(/, "si")'  # 'si' occurs throughout the corpora


@pytest.mark.parametrize("n_words", SCALING_SIZES)
@pytest.mark.benchmark(group="S-ANALYZE")
def test_analyze_string_scaling(benchmark, n_words):
    goddag = goddag_at_size(n_words)

    def run() -> int:
        return len(evaluate_query(goddag, QUERY))

    count = benchmark(run)
    assert count == 1
    record(f"S-ANALYZE n={n_words}", "SERIES",
           "temporary hierarchy built and torn down per call")


@pytest.mark.benchmark(group="S-ANALYZE-matches")
@pytest.mark.parametrize("pattern,label", [
    ("zqzq", "no matches"),
    ("si", "common bigram"),
    ("[aeiouæy]", "every vowel"),
])
def test_analyze_match_density(benchmark, pattern, label):
    goddag = goddag_at_size(SCALING_SIZES[1])

    def run() -> str:
        return serialize_items(evaluate_query(
            goddag, f'analyze-string(/, "{pattern}")'))

    out = benchmark(run)
    assert out.startswith("<res>")
