"""EX1 — Definition 4, Example 1: analyze-string with a fragment pattern.

Paper: applying analyze-string to <w>unawendendne</w> with pattern
``.*un<a>a</a>we.*`` yields ``<res><m>un<a>a</a>we</m>ndendne</res>``.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import evaluate_query, serialize_items
from repro.experiments.paperdata import EXAMPLE_1

from conftest import record

QUERY = (f"analyze-string({EXAMPLE_1['target_query']}, "
         f"\"{EXAMPLE_1['pattern']}\")")


@pytest.mark.benchmark(group="EX1")
def test_example1_fragment_pattern(benchmark, boethius_goddag_session):
    goddag = boethius_goddag_session

    def run() -> str:
        return serialize_items(evaluate_query(goddag, QUERY))

    measured = benchmark(run)
    assert measured == EXAMPLE_1["paper_output"]
    record("EX1 analyze-string", "EXACT", measured)
