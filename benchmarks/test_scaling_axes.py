"""S-AXES — extended-axis evaluation scaling.

Measures the Definition 1 axes (the paper's core query primitives) over
growing corpora: one overlap join (`line/overlapping::w`) and one
containment join (`line/xdescendant::w`) per size.
"""

from __future__ import annotations

import pytest

from repro.bench import SCALING_SIZES, goddag_at_size
from repro.core.goddag import evaluate_axis

from conftest import record


def _overlap_join(goddag):
    hits = 0
    for line in goddag.elements("line"):
        hits += sum(1 for n in evaluate_axis(goddag, "overlapping", line)
                    if n.name == "w")
    return hits


def _containment_join(goddag):
    hits = 0
    for line in goddag.elements("line"):
        hits += sum(1 for n in evaluate_axis(goddag, "xdescendant", line)
                    if n.name == "w")
    return hits


@pytest.mark.parametrize("n_words", SCALING_SIZES)
@pytest.mark.benchmark(group="S-AXES-overlap")
def test_overlap_join_scaling(benchmark, n_words):
    goddag = goddag_at_size(n_words)
    goddag.span_index()  # build outside the timed region
    hits = benchmark(_overlap_join, goddag)
    assert hits > 0  # hyphenation guarantees line/word overlap
    record(f"S-AXES overlap n={n_words}", "SERIES",
           f"{hits} line/word overlaps found")


@pytest.mark.parametrize("n_words", SCALING_SIZES)
@pytest.mark.benchmark(group="S-AXES-containment")
def test_containment_join_scaling(benchmark, n_words):
    goddag = goddag_at_size(n_words)
    goddag.span_index()
    hits = benchmark(_containment_join, goddag)
    assert hits > 0


@pytest.mark.parametrize("axis", ["xancestor", "xdescendant",
                                  "xfollowing", "xpreceding",
                                  "overlapping"])
@pytest.mark.benchmark(group="S-AXES-single")
def test_single_axis_cost(benchmark, axis):
    """Per-axis cost from a mid-document word, at the largest size."""
    goddag = goddag_at_size(SCALING_SIZES[-1])
    goddag.span_index()
    words = list(goddag.elements("w"))
    node = words[len(words) // 2]
    result = benchmark(evaluate_axis, goddag, axis, node)
    assert isinstance(result, list)
