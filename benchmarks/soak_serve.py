"""Nightly soak: sustained mixed load against the query service.

Runs an embedded server over a sharded corpus plus a writable
document, then drives it with a fleet of keep-alive clients — document
reads, corpus scatter-gather reads, streamed pages, and a single
writer cycling updates — for ``--seconds`` of wall time.  The run
fails on any non-2xx response (4xx are the chaos pack's business; a
soak issues only well-formed requests) and on unbounded memory growth:
RSS is sampled after warm-up and at the end, and the growth must stay
under ``--rss-growth-mb``.

Usage::

    PYTHONPATH=src python benchmarks/soak_serve.py [--seconds 300] \
        [--clients 4] [--words 16000] [--shards 8] \
        [--rss-growth-mb 256]

Exit status 1 on any error or RSS blow-up; a JSON summary goes to
stdout either way.
"""

from __future__ import annotations

import argparse
import http.client
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus.generator import GeneratorConfig, generate_document  # noqa: E402
from repro.server import ServerConfig, ServerHandle  # noqa: E402
from repro.store import DocumentStore  # noqa: E402

_PAGE_SIZE = None


def rss_bytes() -> int:
    """Resident set size of this process (server + clients)."""
    global _PAGE_SIZE
    if _PAGE_SIZE is None:
        import resource

        _PAGE_SIZE = resource.getpagesize()
    fields = Path("/proc/self/statm").read_text().split()
    return int(fields[1]) * _PAGE_SIZE


READ_PATHS = [
    "/query?name=doc&q=count(/descendant::w)",
    "/query?name=doc&q=count(/descendant::line[overlapping::w])",
    "/query?name=doc&q=/descendant::w&limit=25",
    "/query?name=doc&q=/descendant::w&stream=1&limit=100",
    '/cquery?q=count(collection("corpus")//w)',
    '/cquery?q=collection("corpus")//lb&limit=10',
    "/statz",
    "/healthz",
]

#: the PR-4 churn cycle: a closed loop, so the document never drifts
WRITE_CYCLE = [
    'rename node /descendant::w[1] as "wx"',
    'rename node /descendant::wx[1] as "w"',
    'insert node <note>soak</note> after /descendant::w[2]',
    "delete node /descendant::note[1]",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=300.0)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--words", type=int, default=16000)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--rss-growth-mb", type=float, default=256.0)
    args = parser.parse_args(argv)

    root = Path(tempfile.mkdtemp(prefix="mhxq-soak-serve-"))
    errors: list[str] = []
    counts = {"reads": 0, "writes": 0}
    lock = threading.Lock()
    #: set just before the client fleet starts, so ``--seconds`` is
    #: pure load time and excludes corpus construction and warm-up
    deadline = time.monotonic()
    try:
        store = DocumentStore.init(root / "catalog")
        store.add("doc", generate_document(
            GeneratorConfig(n_words=min(args.words, 4000), seed=0)))
        store.add_corpus("corpus", generate_document(
            GeneratorConfig(n_words=args.words, seed=1)),
            shards=args.shards)
        with ServerHandle(store, ServerConfig()) as handle:
            def fail(note: str) -> None:
                with lock:
                    if len(errors) < 20:
                        errors.append(note)

            def reader(identity: int) -> None:
                connection = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=120)
                index = identity
                while time.monotonic() < deadline and not errors:
                    path = READ_PATHS[index % len(READ_PATHS)]
                    index += 1
                    try:
                        connection.request("GET", path)
                        reply = connection.getresponse()
                        reply.read()
                    except OSError as error:
                        fail(f"reader {identity} {path}: {error!r}")
                        return
                    if reply.status != 200:
                        fail(f"reader {identity} {path}: "
                             f"{reply.status}")
                        return
                    with lock:
                        counts["reads"] += 1
                connection.close()

            def writer() -> None:
                connection = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=120)
                index = 0
                while time.monotonic() < deadline and not errors:
                    statement = WRITE_CYCLE[index % len(WRITE_CYCLE)]
                    index += 1
                    body = json.dumps({
                        "name": "doc",
                        "statements": [statement]}).encode("utf-8")
                    try:
                        connection.request("POST", "/update",
                                           body=body)
                        reply = connection.getresponse()
                        reply.read()
                    except OSError as error:
                        fail(f"writer: {error!r}")
                        return
                    if reply.status != 200:
                        fail(f"writer: {reply.status}")
                        return
                    with lock:
                        counts["writes"] += 1
                    time.sleep(0.01)  # writes persist; don't thrash
                connection.close()

            # warm every path once before the RSS baseline
            probe = http.client.HTTPConnection(
                handle.host, handle.port, timeout=120)
            for path in READ_PATHS:
                probe.request("GET", path)
                reply = probe.getresponse()
                reply.read()
                if reply.status != 200:
                    fail(f"warmup {path}: {reply.status}")
            probe.close()
            rss_before = rss_bytes()
            deadline = time.monotonic() + args.seconds
            threads = [threading.Thread(target=writer)]
            threads += [threading.Thread(target=reader,
                                         args=(identity,))
                        for identity in range(args.clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            rss_after = rss_bytes()
            stats = handle.get_json("/statz")[1]
        store.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    growth_mb = (rss_after - rss_before) / (1 << 20)
    summary = {
        "seconds": args.seconds,
        "clients": args.clients,
        "reads": counts["reads"],
        "writes": counts["writes"],
        "responses": stats["responses"],
        "rss_before_mb": round(rss_before / (1 << 20), 1),
        "rss_after_mb": round(rss_after / (1 << 20), 1),
        "rss_growth_mb": round(growth_mb, 1),
        "errors": errors,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    if errors:
        print(f"soak: {len(errors)} error(s)", file=sys.stderr)
        return 1
    if growth_mb > args.rss_growth_mb:
        print(f"soak: RSS grew {growth_mb:.1f} MiB, over the "
              f"{args.rss_growth_mb} MiB bound", file=sys.stderr)
        return 1
    non_ok = {status: count
              for status, count in stats["responses"].items()
              if not status.startswith("2")}
    if non_ok:
        print(f"soak: non-2xx responses {non_ok}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
