"""S-STORE — ``.mhxb`` mmap cold load vs XML re-parse + index build.

The tentpole claim of ISSUE 4 (DESIGN.md §10): loading an engine from
the binary ``.mhxb`` container — memory-mapped arrays, no XML parse,
no alignment pass, no sort — reaches the first query result ≥ 5×
faster than the ``.mhx`` JSON path (XML re-parse + KyGODDAG build +
span-index construction) on the largest bench corpus.  Both paths must
agree on the probe results.  Shared CI runners damp the floor through
``REPRO_BENCH_MIN_COLDLOAD_SPEEDUP``.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.api import Engine, load_mhx, save_mhx
from repro.bench import SCALING_SIZES, corpus_at_size

from conftest import record

LARGEST = SCALING_SIZES[-1]

MIN_COLDLOAD_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_COLDLOAD_SPEEDUP", "5.0"))

#: parity probes: a named-axis count plus an extended-axis touch, so
#: both the name index and the span index actually serve reads
PROBES = [
    "count(/descendant::w)",
    "count(/descendant::line[overlapping::w])",
]

#: the timed metric is cold-load **to first query** — one probe; the
#: full probe list runs in the (untimed) parity test
FIRST_QUERY = PROBES[0]


def median_of(function, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        gc.collect()  # cold loads churn ~10^5 objects; decouple runs
        begin = time.perf_counter()
        function()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    return samples[len(samples) // 2]


@pytest.fixture(scope="module")
def containers(tmp_path_factory):
    root = tmp_path_factory.mktemp("coldload")
    corpus = corpus_at_size(LARGEST)
    engine = Engine(corpus)
    engine.goddag.span_index()
    mhx = root / "corpus.mhx"
    mhxb = root / "corpus.mhxb"
    save_mhx(corpus, mhx)
    engine.save_mhxb(mhxb)
    return mhx, mhxb


def _cold_mhxb(mhxb, probes=PROBES) -> list[str]:
    engine = Engine.from_mhxb(mhxb)
    return [engine.query(probe).serialize() for probe in probes]


def _cold_xml(mhx, probes=PROBES) -> list[str]:
    engine = Engine(load_mhx(mhx))
    engine.goddag.span_index()
    return [engine.query(probe).serialize() for probe in probes]


def test_cold_paths_agree(containers):
    mhx, mhxb = containers
    assert _cold_mhxb(mhxb) == _cold_xml(mhx)
    restored = Engine.from_mhxb(mhxb)
    restored.goddag.check_invariants()
    record("S-STORE parity", "PASS",
           f"n={LARGEST}: mmap cold load matches XML rebuild on "
           f"{len(PROBES)} probes")


def test_mhxb_coldload_beats_xml_rebuild(containers):
    mhx, mhxb = containers
    first = [FIRST_QUERY]
    _cold_mhxb(mhxb, first)  # fault the file into the page cache
    _cold_xml(mhx, first)
    cold_binary = median_of(lambda: _cold_mhxb(mhxb, first), repeats=7)
    cold_xml = median_of(lambda: _cold_xml(mhx, first), repeats=3)
    speedup = cold_xml / cold_binary
    record("S-STORE cold load", "PASS" if speedup >=
           MIN_COLDLOAD_SPEEDUP else "FAIL",
           f"n={LARGEST}: xml {cold_xml * 1e3:.0f} ms, "
           f"mhxb {cold_binary * 1e3:.0f} ms ({speedup:.1f}x)")
    assert speedup >= MIN_COLDLOAD_SPEEDUP, (
        f"mhxb cold-load speedup {speedup:.2f}x below the "
        f"{MIN_COLDLOAD_SPEEDUP}x floor "
        f"(xml {cold_xml:.3f}s, mhxb {cold_binary:.3f}s)")
