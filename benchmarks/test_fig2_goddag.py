"""FIG2 — Figure 2: building the KyGODDAG of the Figure 1 document.

The drawing's checkable content is the node/edge inventory: 16 leaves,
2 line / 3 vline / 6 w / 3 res / 2 dmg elements, one united root.
"""

from __future__ import annotations

import pytest

from repro.core.goddag import KyGoddag, collect, to_dot
from repro.corpus.boethius import boethius_document
from repro.experiments.paperdata import FIGURE_2_INVENTORY

from conftest import record


@pytest.mark.benchmark(group="FIG2")
def test_fig2_build_goddag(benchmark):
    document = boethius_document(validate=False)
    goddag = benchmark(KyGoddag.build, document)
    stats = collect(goddag)
    assert stats.leaf_count == FIGURE_2_INVENTORY["leaves"]
    measured = {h.name: h.elements_by_name for h in stats.hierarchies}
    assert measured == FIGURE_2_INVENTORY["elements"]
    record("FIG2 KyGODDAG inventory", "EXACT",
           f"leaves={stats.leaf_count} nodes={stats.node_count} "
           f"edges={stats.edge_count}")


@pytest.mark.benchmark(group="FIG2")
def test_fig2_render_dot(benchmark, boethius_goddag_session):
    dot = benchmark(to_dot, boethius_goddag_session)
    assert "dmg1" in dot and "dmg2" in dot  # Figure 2's labels
    record("FIG2 DOT rendering", "EXACT",
           "GraphViz drawing with the figure's dmg1/dmg2/t-number labels")
