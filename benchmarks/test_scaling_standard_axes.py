"""S-AXES-STD — the slice-based standard axes vs the seed's walkers.

The tentpole claim of the array-backed navigation engine (DESIGN.md §5):
``descendant``/``following``/``preceding`` are preorder slices plus a
bisect into the partition's boundary array, replacing the seed's
stack walks and full-corpus scans (preserved as the oracle in
:mod:`repro.core.goddag.naive`).  Each ``*_speedup`` test times both on
the largest generated corpus and asserts the ≥5× win; the S-ANALYZE
test asserts the temporary-hierarchy lifecycle never rebuilds the
SpanIndex and beats the rebuild-per-change baseline ≥2×.
"""

from __future__ import annotations

import os
import re
import time

import pytest

from repro.bench import SCALING_SIZES, goddag_at_size
from repro.cmh.spans import Span, SpanSet
from repro.core.goddag import evaluate_axis
from repro.core.goddag.index import SpanIndex
from repro.core.goddag.naive import (
    naive_descendant,
    naive_following,
    naive_preceding,
)
from repro.core.runtime import evaluate_query

from conftest import record

LARGEST = SCALING_SIZES[-1]

#: Required advantage of the slice axes over the seed walkers (the
#: measured headroom is 2-40× larger).  Shared CI runners override the
#: floors through the environment to damp wall-clock noise; quiet
#: machines enforce the real targets.
MIN_AXIS_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_AXIS_SPEEDUP", "5.0"))
#: Required advantage of incremental SpanIndex maintenance over the
#: seed's rebuild-per-change during one add/remove lifecycle.
MIN_ANALYZE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_ANALYZE_SPEEDUP", "2.0"))


def best_of(function, *args, repeats: int = 5) -> float:
    """Minimum wall time of ``function(*args)`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        function(*args)
        best = min(best, time.perf_counter() - begin)
    return best


def _speedup_contexts(goddag):
    """Contexts covering small, large, and whole-corpus result sets."""
    words = list(goddag.elements("w"))
    vlines = list(goddag.elements("vline"))
    return [goddag.root, vlines[len(vlines) // 2],
            words[len(words) // 4], words[len(words) // 2]]


@pytest.mark.parametrize("axis,walker", [
    ("descendant", naive_descendant),
    ("following", naive_following),
    ("preceding", naive_preceding),
])
def test_standard_axis_speedup_vs_seed_walker(axis, walker):
    goddag = goddag_at_size(LARGEST)
    goddag.span_index()
    contexts = _speedup_contexts(goddag)
    if axis != "descendant":
        contexts = contexts[1:]  # following/preceding of root are empty
    fast = sum(best_of(evaluate_axis, goddag, axis, node)
               for node in contexts)
    slow = sum(best_of(walker, goddag, node, repeats=3)
               for node in contexts)
    ratio = slow / fast
    record(f"S-AXES-STD {axis} n={LARGEST}",
           "PASS" if ratio >= MIN_AXIS_SPEEDUP else "FAIL",
           f"slice axes {ratio:.1f}x faster than seed walker")
    assert ratio >= MIN_AXIS_SPEEDUP, (
        f"{axis}: slice implementation only {ratio:.1f}x faster than "
        f"the seed walker (required {MIN_AXIS_SPEEDUP}x)")


@pytest.mark.parametrize("axis", ["descendant", "following", "preceding"])
@pytest.mark.benchmark(group="S-AXES-STD")
def test_standard_axis_cost(benchmark, axis):
    """Per-call cost of one slice axis from a mid-document word."""
    goddag = goddag_at_size(LARGEST)
    goddag.span_index()
    words = list(goddag.elements("w"))
    node = words[len(words) // 2]
    result = benchmark(evaluate_axis, goddag, axis, node)
    assert isinstance(result, list)


def _temporary_spans(goddag) -> SpanSet:
    """Markup shaped like analyze-string's (Definition 4) hierarchy."""
    text = goddag.text
    matches = [Span(m.start(), m.end(), "m")
               for m in re.finditer("si", text)][:256]
    assert matches, "'si' must occur in the generated corpus"
    return SpanSet(text, [Span(0, len(text), "res")] + matches)


def test_analyze_lifecycle_never_rebuilds_span_index():
    """Definition 4 temporaries must maintain the index incrementally."""
    goddag = goddag_at_size(LARGEST)
    index = goddag.span_index()
    builds_before = goddag.index_full_builds
    adds_before = index.incremental_adds
    removes_before = index.incremental_removes
    result = evaluate_query(goddag, 'analyze-string(/, "si")')
    assert len(result) == 1
    assert goddag.span_index() is index
    assert goddag.index_full_builds == builds_before
    assert index.incremental_adds == adds_before + 1
    assert index.incremental_removes == removes_before + 1
    record(f"S-ANALYZE incremental n={LARGEST}", "PASS",
           "analyze-string added/removed its hierarchy without a rebuild")


def test_analyze_incremental_beats_rebuild_per_change():
    goddag = goddag_at_size(LARGEST)
    goddag.span_index()
    spans = _temporary_spans(goddag)

    def incremental_cycle() -> None:
        goddag.add_hierarchy_from_spans("bench-tmp", spans,
                                        temporary=True)
        goddag.remove_hierarchy("bench-tmp")

    def rebuild_cycle() -> None:
        # The seed discarded the index on every membership change and
        # rebuilt it lazily, so one add/remove lifecycle paid two full
        # rebuilds.  Detach the live index so the add/remove below
        # doesn't also pay the incremental updates being measured above.
        live = goddag._index
        goddag._index = None
        try:
            goddag.add_hierarchy_from_spans("bench-tmp", spans,
                                            temporary=True)
            SpanIndex(goddag)
            goddag.remove_hierarchy("bench-tmp")
            SpanIndex(goddag)
        finally:
            goddag._index = live

    incremental = best_of(incremental_cycle)
    rebuild = best_of(rebuild_cycle)
    ratio = rebuild / incremental
    record(f"S-ANALYZE lifecycle n={LARGEST}",
           "PASS" if ratio >= MIN_ANALYZE_SPEEDUP else "FAIL",
           f"incremental maintenance {ratio:.1f}x faster than rebuilds")
    assert ratio >= MIN_ANALYZE_SPEEDUP, (
        f"incremental index maintenance only {ratio:.1f}x faster than "
        f"rebuild-per-change (required {MIN_ANALYZE_SPEEDUP}x)")


@pytest.mark.parametrize("n_words", SCALING_SIZES)
@pytest.mark.benchmark(group="S-ANALYZE-lifecycle")
def test_temporary_hierarchy_lifecycle_scaling(benchmark, n_words):
    """Add+remove cost of a temporary hierarchy as the corpus grows."""
    goddag = goddag_at_size(n_words)
    goddag.span_index()
    spans = _temporary_spans(goddag)

    def cycle() -> None:
        goddag.add_hierarchy_from_spans("bench-tmp", spans,
                                        temporary=True)
        goddag.remove_hierarchy("bench-tmp")

    benchmark(cycle)
    assert not goddag.has_hierarchy("bench-tmp")
