"""S-PLAN — cost-based planning vs the mechanical lowering.

The tentpole claim of ISSUE 10 (DESIGN.md §16): on a skewed corpus the
cost pass must make at least two of the reversible join chains run
``REPRO_BENCH_MIN_PLAN_SPEEDUP``× (default 2×) faster than their
mechanical plans, while **no** workload query regresses more than
``REPRO_BENCH_MAX_PLAN_REGRESSION`` (default 10 %) — and every costed
answer stays item-for-item identical to the mechanical oracle.

Shared CI runners damp the speedup floor through the environment
variables; quiet machines enforce the real targets.
"""

from __future__ import annotations

import os
import time

from repro.api import Engine

from conftest import record
from emit_bench import PLAN_WORDS, PLAN_WORKLOAD, _plan_corpus

MIN_PLAN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PLAN_SPEEDUP", "2.0"))
#: a workload query regresses when costed > mechanical * (1 + this)
MAX_PLAN_REGRESSION = float(
    os.environ.get("REPRO_BENCH_MAX_PLAN_REGRESSION", "0.10"))
#: how many chains must clear the speedup floor
MIN_FAST_CHAINS = 2


def best_of(function, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - begin)
    return best


def engines():
    document = _plan_corpus(PLAN_WORDS)
    costed = Engine(document)
    mechanical = Engine(document, use_cost=False)
    costed.goddag.span_index()
    mechanical.goddag.span_index()
    for _label, query in PLAN_WORKLOAD:  # warm plans + lazy indexes
        costed.query(query)
        mechanical.query(query)
    return costed, mechanical


def test_costed_identical_to_mechanical():
    """Every workload query: costed plan ≡ mechanical oracle, item for
    item (the cost pass is a pure optimization)."""
    costed, mechanical = engines()
    checked = 0
    for label, query in PLAN_WORKLOAD:
        want = mechanical.query(query).strings()
        got = costed.query(query).strings()
        assert got == want, label
        checked += len(got)
    record("S-PLAN parity", "PASS",
           f"{len(PLAN_WORKLOAD)} workload queries, "
           f"{checked} result items identical")


def test_plan_workload_speedup():
    costed, mechanical = engines()
    rows = []
    for label, query in PLAN_WORKLOAD:
        costed_time = best_of(lambda q=query: costed.query(q))
        mechanical_time = best_of(lambda q=query: mechanical.query(q))
        rows.append((label, mechanical_time / costed_time,
                     costed_time, mechanical_time))
    fast = [row for row in rows if row[1] >= MIN_PLAN_SPEEDUP]
    slow = [row for row in rows
            if row[1] < 1.0 / (1.0 + MAX_PLAN_REGRESSION)]
    summary = ", ".join(f"{label} {speedup:.1f}x"
                        for label, speedup, _c, _m in rows)
    record("S-PLAN speedup",
           "PASS" if len(fast) >= MIN_FAST_CHAINS and not slow
           else "FAIL",
           f"{summary} (floor {MIN_PLAN_SPEEDUP:.1f}x on "
           f">={MIN_FAST_CHAINS} chains, regression band "
           f"{MAX_PLAN_REGRESSION:.0%}) at n={PLAN_WORDS}")
    assert len(fast) >= MIN_FAST_CHAINS, (
        f"only {len(fast)} workload chains cleared the "
        f"{MIN_PLAN_SPEEDUP:.1f}x floor: {summary}")
    assert not slow, (
        "costed plans regressed beyond the "
        f"{MAX_PLAN_REGRESSION:.0%} band: "
        + ", ".join(f"{label} costed {c * 1e3:.2f}ms vs mechanical "
                    f"{m * 1e3:.2f}ms" for label, _s, c, m in slow))
