"""Q-I.1 — §4 query: lines containing the word *singallice* (incl. the line-crossing hit)."""

from __future__ import annotations

import pytest

from repro.core.runtime import evaluate_query, serialize_items
from repro.experiments.paperdata import PAPER_QUERIES

from conftest import record

SPEC = PAPER_QUERIES[0]


@pytest.mark.benchmark(group="Q-I.1")
def test_i1_literal_query(benchmark, boethius_goddag_session):
    goddag = boethius_goddag_session

    def run() -> str:
        return serialize_items(evaluate_query(goddag, SPEC.query))

    measured = benchmark(run)
    assert measured == SPEC.expected_output
    status = "EXACT" if measured == SPEC.paper_output else "DOCUMENTED DELTA"
    record("Q-I.1 literal", status, measured)
