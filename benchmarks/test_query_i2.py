"""Q-I.2 — §4 query: lines with damaged words, damaged words highlighted."""

from __future__ import annotations

import pytest

from repro.core.runtime import evaluate_query, serialize_items
from repro.experiments.paperdata import PAPER_QUERIES

from conftest import record

SPEC = PAPER_QUERIES[1]


@pytest.mark.benchmark(group="Q-I.2")
def test_i2_literal_query(benchmark, boethius_goddag_session):
    goddag = boethius_goddag_session

    def run() -> str:
        return serialize_items(evaluate_query(goddag, SPEC.query))

    measured = benchmark(run)
    assert measured == SPEC.expected_output
    status = "EXACT" if measured == SPEC.paper_output else "DOCUMENTED DELTA"
    record("Q-I.2 literal", status, measured)


@pytest.mark.benchmark(group="Q-I.2")
def test_i2_amended_query(benchmark, boethius_goddag_session):
    """The documented variant (see EXPERIMENTS.md Q-I.2)."""
    goddag = boethius_goddag_session

    def run() -> str:
        return serialize_items(evaluate_query(goddag, SPEC.amended_query))

    measured = benchmark(run)
    assert measured == SPEC.amended_output
    record("Q-I.2 amended", "MATCHES EXPECTATION", measured)
