"""S-SHARD — scatter-gather scaling over a sharded corpus (DESIGN.md §13).

The perf claims of ISSUE 7, gated live rather than against checked-in
numbers:

* **Pruning** is work reduction, so it holds on any machine: a
  damage-anchored semi-join over a corpus whose damage is confined to
  one shard must run ``REPRO_BENCH_MIN_PRUNE_SPEEDUP``× (default 5×)
  faster with manifest pruning than with every shard dispatched.
* **Parallelism** is only physical with enough cores: the 4-worker
  pool must beat serial in-process dispatch by
  ``REPRO_BENCH_MIN_SHARD_SPEEDUP``× (default 2.5×) on a ≥64k-word
  corpus — skipped below 4 usable CPUs, where the pool can only add
  IPC overhead (``BENCH_shard.json`` records the honest single-core
  number for the regression wall instead).

Both series reuse one session-scoped sharded store; the corpus is the
``emit_bench.bench_shard`` shape — heavily damaged head fused onto a
pristine body — so ``dmg`` cardinality is zero in every body shard.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.store import DocumentStore

from conftest import record
from emit_bench import SHARD_COUNT, _shard_corpus

WORKERS = 4

MIN_PRUNE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PRUNE_SPEEDUP", "5.0"))
MIN_SHARD_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SHARD_SPEEDUP", "2.5"))

#: words in the scaling corpora: the parallel gate wants the ≥64k-word
#: headline corpus, but only multi-core runners pay for it; the
#: pruning corpus is sized so the per-shard scan dwarfs the fixed
#: per-``cquery`` cost (classification + manifest checks) that would
#: otherwise dilute the measured ratio.
PARALLEL_WORDS = 64000
PRUNE_WORDS = 48000
#: the cuts are size-balanced, so the ideal pruning ratio *is* the
#: shard count — 12 ways leaves headroom over the 5x floor while the
#: damaged head (words/16) still fits inside shard 0
PRUNE_SHARDS = 12

PRUNE_QUERY = 'count(collection("c")/descendant::w[overlapping::dmg])'
SCAN_QUERY = 'count(collection("c")/descendant::w[overlapping::line])'


def usable_cpus() -> int:
    return len(os.sched_getaffinity(0))


def median_of(function, repeats: int = 5) -> float:
    samples = []
    for _ in range(repeats):
        gc.collect()
        begin = time.perf_counter()
        function()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    return samples[len(samples) // 2]


def sharded_store(root, n_words: int,
                  shards: int = SHARD_COUNT) -> DocumentStore:
    store = DocumentStore.init(root)
    store.add_corpus("c", _shard_corpus(n_words), shards=shards)
    return store


def test_manifest_pruning_speedup(tmp_path):
    store = sharded_store(tmp_path / "catalog", PRUNE_WORDS,
                          shards=PRUNE_SHARDS)
    try:
        store.cquery(PRUNE_QUERY)  # warm shard engines + plan cache
        store.cquery(PRUNE_QUERY, prune=False)
        shape = store.cquery(PRUNE_QUERY)
        assert shape.shards_pruned > 0, (
            "corpus shape regression: damage leaked into every shard, "
            "nothing to prune")
        pruned = median_of(lambda: store.cquery(PRUNE_QUERY))
        unpruned = median_of(
            lambda: store.cquery(PRUNE_QUERY, prune=False))
    finally:
        store.close()
    speedup = unpruned / pruned
    record("S-SHARD pruning",
           "PASS" if speedup >= MIN_PRUNE_SPEEDUP else "FAIL",
           f"n={PRUNE_WORDS}: {shape.shards_pruned}/{shape.shards_total}"
           f" shards pruned, {unpruned * 1e3:.1f} ms -> "
           f"{pruned * 1e3:.1f} ms ({speedup:.1f}x)")
    assert speedup >= MIN_PRUNE_SPEEDUP, (
        f"manifest pruning gained only {speedup:.2f}x, below the "
        f"{MIN_PRUNE_SPEEDUP}x floor (pruned {pruned:.4f}s, "
        f"unpruned {unpruned:.4f}s)")


@pytest.mark.skipif(
    usable_cpus() < WORKERS,
    reason=f"parallel speedup needs >= {WORKERS} usable CPUs "
           f"(have {usable_cpus()}); BENCH_shard.json records the "
           "single-core number")
def test_worker_pool_speedup(tmp_path):
    store = sharded_store(tmp_path / "catalog", PARALLEL_WORDS)
    try:
        store.cquery(SCAN_QUERY)  # warm engines in-process...
        store.cquery(SCAN_QUERY, workers=WORKERS)  # ...and in the pool
        serial = median_of(lambda: store.cquery(SCAN_QUERY))
        pooled = median_of(
            lambda: store.cquery(SCAN_QUERY, workers=WORKERS))
    finally:
        store.close()
    speedup = serial / pooled
    record("S-SHARD parallel",
           "PASS" if speedup >= MIN_SHARD_SPEEDUP else "FAIL",
           f"n={PARALLEL_WORDS}, {WORKERS} workers on "
           f"{usable_cpus()} CPUs: {serial * 1e3:.1f} ms -> "
           f"{pooled * 1e3:.1f} ms ({speedup:.1f}x)")
    assert speedup >= MIN_SHARD_SPEEDUP, (
        f"{WORKERS}-worker pool gained only {speedup:.2f}x over "
        f"serial, below the {MIN_SHARD_SPEEDUP}x floor "
        f"(serial {serial:.4f}s, pooled {pooled:.4f}s)")
