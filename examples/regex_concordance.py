"""A KWIC concordance with structure-aware highlighting (§2, case II/III).

Builds a keyword-in-context concordance for a regex over a synthetic
manuscript.  ``analyze-string`` materializes every match as temporary
markup, so each hit can report — via the extended axes — the physical
line it falls on, whether it crosses a line break, and whether any part
of it is damaged or editorially restored.

Run:  python examples/regex_concordance.py [pattern]
"""

from __future__ import annotations

import sys

from repro import Engine
from repro.corpus import GeneratorConfig, generate_document

CONCORDANCE_QUERY = """
let $res := analyze-string(/, "{pattern}")
for $m in $res/xdescendant::m
let $line := $m/xancestor::line
return <hit
    lines="{{string-join(for $l in ($line | $m/overlapping::line)
                         return string($l/@n), ",")}}"
    split="{{if ($m/overlapping::line) then "yes" else "no"}}"
    damaged="{{if ($m/xancestor::dmg or $m/xdescendant::dmg
               or $m/overlapping::dmg) then "yes" else "no"}}"
    restored="{{if ($m/xancestor::res[hierarchy(.) = "restoration"]
               or $m/xdescendant::res[hierarchy(.) = "restoration"]
               or $m/overlapping::res[hierarchy(.) = "restoration"])
               then "yes" else "no"}}"
    >{{string($m)}}</hit>
"""


def concordance(pattern: str, n_words: int = 250):
    document = generate_document(GeneratorConfig(
        n_words=n_words, seed=1066, hyphenation_rate=0.5,
        damage_rate=0.12, restoration_rate=0.12))
    engine = Engine(document)
    hits = engine.query(CONCORDANCE_QUERY.format(pattern=pattern))
    text = document.text
    rows = []
    cursor = 0
    for hit in hits:
        match_text = hit.text_content()
        position = text.find(match_text, cursor)
        if position == -1:
            position = text.find(match_text)
        cursor = position + 1
        left = text[max(0, position - 24):position]
        right = text[position + len(match_text):position + len(match_text)
                     + 24]
        rows.append((left, match_text, right, hit.get("lines"),
                     hit.get("split"), hit.get("damaged"),
                     hit.get("restored")))
    return rows


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "si"
    rows = concordance(pattern)
    print(f"Concordance for /{pattern}/ — {len(rows)} hits")
    print(f"{'left context':>26} | {'match':^12} | {'right context':<26} "
          f"{'lines':>7} {'split':>6} {'dmg':>4} {'res':>4}")
    print("-" * 96)
    for left, match, right, lines, split, damaged, restored in rows:
        print(f"{left:>26} | {match:^12} | {right:<26} "
              f"{lines or '':>7} {split:>6} "
              f"{'Y' if damaged == 'yes' else '·':>4} "
              f"{'Y' if restored == 'yes' else '·':>4}")
    split_hits = sum(1 for row in rows if row[4] == "yes")
    print("-" * 96)
    print(f"{split_hits} of {len(rows)} matches cross a physical line "
          f"break — the overlap the paper's extended axes exist for.")


if __name__ == "__main__":
    main()
