"""Vectorized cross-hierarchy interval joins (DESIGN.md §11).

The extended axes of Definition 1 — ``overlapping``, ``xdescendant``,
``xancestor``, ``xfollowing``, ``xpreceding`` — relate nodes *across*
hierarchies by their leaf intervals.  PR 5 lowers every extended-axis
step (and recognized ``[extended-axis::name]`` predicates) to explicit
interval-join operators: one sorted-array join per step over the span
index's columnar arrays instead of one span-arithmetic call per
context node.  This example shows

* the ``explain()`` rendering of the lowered ``interval-join`` and
  semi-join operators,
* the per-call ``QueryStats`` join counters, and
* a direct comparison of the batched kernel against the per-node path
  it replaced (identical results, one call instead of thousands).

Run:  python examples/overlap_join_demo.py
"""

from repro import Engine
from repro.core.goddag import evaluate_axis_batch, join_axis_batch
from repro.corpus import BASE_TEXT, ENCODINGS

#: A word overlapping a physical line break (the paper's query I.1
#: situation) and the lines damaged material spills into.
STEP_QUERY = "/descendant::w/overlapping::line"

#: The semi-join shape: filter one hierarchy's nodes by a
#: cross-hierarchy existence test against another.
PREDICATE_QUERY = "/descendant::line[overlapping::w]"

#: Chained joins: containment down into one hierarchy, then back up
#: into another.
CHAIN_QUERY = "/descendant::dmg/xdescendant::w/xancestor::line"


def main() -> None:
    engine = Engine.from_xml(BASE_TEXT, ENCODINGS)

    print("explain():")
    print(engine.explain(PREDICATE_QUERY))
    print()
    print(engine.explain(CHAIN_QUERY))
    print()

    for query in (STEP_QUERY, PREDICATE_QUERY, CHAIN_QUERY):
        result = engine.query(query)
        print(f"{query}")
        print(f"  -> {len(result.items)} nodes | "
              f"join steps: {result.stats.join_steps}, "
              f"batched extended steps: "
              f"{result.stats.batched_extended_steps}")

    # The same step through both engines: the batched kernel is one
    # sorted-merge join; the per-node path evaluates every context
    # separately and merges Python objects.  Results are identical —
    # the per-node axes remain the differential-testing oracle.
    goddag = engine.goddag
    words = list(goddag.elements("w"))
    batched = join_axis_batch(goddag, "overlapping", words, "line",
                              skip_leaves=True)
    pernode = evaluate_axis_batch(goddag, "overlapping", words, "line",
                                  skip_leaves=True)
    assert list(batched) == list(pernode)
    print()
    print(f"overlapping::line over {len(words)} words: "
          f"{len(batched)} results, batched == per-node")
    starts, ends = batched.span_columns()
    print("columnar node-set spans:",
          [f"[{s},{e})" for s, e in zip(starts.tolist(), ends.tolist())])


if __name__ == "__main__":
    main()
