"""The query compilation pipeline: compile once, explain, run many.

``Engine.query`` routes every call through the parse → rewrite →
logical-plan → set-at-a-time pipeline (DESIGN.md §8), caching the
compiled plan per query text.  This example compiles a paper-style
query explicitly, prints its ``explain()`` report — the applied
rewrite rules plus the logical operator tree — and shows the per-call
``QueryStats`` counters including the plan-cache hit flag.

The same report is available from the command line::

    mhxq explain --sample 'for $l in /descendant::line return string($l)'

Run:  python examples/compile_explain.py
"""

from repro import Engine
from repro.corpus import BASE_TEXT, ENCODINGS

QUERY = """
for $l in /descendant::line
  [xdescendant::w[string(.) = "singallice"] or
   overlapping::w[string(.) = "singallice"]]
let $total := count(/descendant::w)
return string($l)
"""


def main() -> None:
    engine = Engine.from_xml(BASE_TEXT, ENCODINGS)

    # Compile explicitly (Engine.query would do the same under the
    # hood); the CompiledQuery is engine-cached and goddag-independent.
    compiled = engine.compile(QUERY)
    print("explain():")
    print(compiled.explain())
    print()

    # Execute the compiled plan — repeatedly, with no recompilation.
    # Both calls hit the plan LRU: engine.compile() above already
    # cached the plan under this query text.
    first = engine.query(QUERY)
    second = engine.query(QUERY)
    print("result:", " | ".join(first.strings()))
    print()
    print("first call  — plan cache hit:", first.stats.plan_cache_hit)
    print("second call — plan cache hit:", second.stats.plan_cache_hit)
    print(f"axis steps: {second.stats.axis_steps} "
          f"(batched set-at-a-time: {second.stats.batched_steps}, "
          f"served without sorting: {second.stats.ordered_steps})")

    # The rewrite notes name every rule application, e.g. the
    # loop-invariant `let $total` hoisted out of the FLWOR body.
    print()
    print("applied rewrites:")
    for note in compiled.rewrites:
        print(f"  - {note}")


if __name__ == "__main__":
    main()
