"""Transactional updates on the Boethius sample (DESIGN.md §9).

Walks the whole update language over the paper's Figure 1 document:
the multihierarchy-specific ``add markup`` / ``remove markup`` pair
(promoting a text span into a concurrent hierarchy and demoting it
back), an in-place ``rename``, a content ``insert``, and a ``replace
value of`` — each applied atomically through the pending-update-list
engine with the structural invariants checked after every statement.

Run:  python examples/update_demo.py
"""

from repro import Engine
from repro.corpus import BASE_TEXT, ENCODINGS


def show(engine: Engine, label: str) -> None:
    print(f"{label}")
    print(f"  text: {engine.document.text}")
    for name in engine.document.hierarchy_names:
        print(f"  {name:12} "
              f"{engine.document.hierarchies[name].to_xml()}")
    print()


def main() -> None:
    engine = Engine.from_xml(BASE_TEXT, ENCODINGS)
    show(engine, "Figure 1, before any update:")

    # Promote the split word 'singallice' to a <gloss> span in the
    # damage hierarchy — markup it never carried.  Only that one
    # hierarchy re-registers; everything else is untouched.
    result = engine.update("""
        add markup gloss to "damage"
        covering /descendant::w[string(.) = "singallice"]
    """)
    print(f"add markup: re-registered {result.replaced_hierarchies}, "
          f"text delta {result.text_delta:+d}")
    print("glossed:", engine.query("string((//gloss)[1])").items, "\n")

    # Rename is fully in place: no hierarchy re-registers at all.
    result = engine.update("rename node (//gloss)[1] as 'keyword'")
    print(f"rename: {result.renamed_in_place} in-place rename(s), "
          f"re-registered {result.replaced_hierarchies}")

    # Bulk rename through FLWOR: every <w> of the structural
    # hierarchy becomes a <token>.
    engine.update("for $w in //w return rename node $w as 'token'")
    print("tokens:", engine.query("count(//token)").items[0], "\n")

    # Insert new content: the base text grows, and every concurrent
    # hierarchy's aligned text nodes absorb the new characters.
    engine.update(
        "insert node <token>eac</token> after (//token)[2]")
    show(engine, "after inserting <token>eac</token>:")

    # Replace a word's value; the overlapping damage markup clamps.
    engine.update(
        "replace value of node (//token)[1] with 'gesceafta'")
    print("replaced first token:",
          engine.query("string((//token)[1])").items)

    # Demote the keyword again — content stays, markup disappears.
    engine.update("remove markup (//keyword)[1]")
    print("keywords left:",
          engine.query("count(//keyword)").items[0])

    engine.goddag.check_invariants()
    show(engine, "\nfinal state (invariants verified):")


if __name__ == "__main__":
    main()
