"""Encoding trade-offs: KyGODDAG vs the single-tree hacks (§1, [6]).

Takes one synthetic manuscript and answers the same information need —
"which lines contain the (possibly line-crossing) word X?" — four ways:

1. extended XQuery over the KyGODDAG (the paper's proposal),
2. hand-written reassembly joins over the fragmentation encoding,
3. hand-written marker scans over the milestone encoding,
4. standard-axes XQuery *through the same engine* over the
   fragmentation encoding (the like-for-like comparison).

It prints the answers (all identical), the query text each approach
requires, and wall-clock timings.

Run:  python examples/fragmentation_tradeoffs.py
"""

from __future__ import annotations

import time

from repro.baselines import fragment_document, milestone_document
from repro.baselines.flatquery import (
    fragment_groups,
    lines_containing_group,
    milestone_groups,
    primary_groups,
    search_groups,
)
from repro.core.goddag import KyGoddag
from repro.core.runtime import evaluate_query
from repro.corpus import GeneratorConfig, generate_document

TARGET = "singallice"

GODDAG_QUERY = f"""
for $l in /descendant::line
  [xdescendant::w[string(.) = "{TARGET}"] or
   overlapping::w[string(.) = "{TARGET}"]]
return string($l)
"""

ENGINE_FLAT_QUERY = f"""
for $first in /descendant::w[string(@part) = "" or string(@part) = "I"]
let $fid := string($first/@fid)
let $text := string-join(
    for $f in /descendant::w[string(@fid) = $fid] return string($f), "")
where $text = "{TARGET}"
return
  for $lid in distinct-values(
      for $f in /descendant::w[string(@fid) = $fid]
      return string($f/ancestor::line/@fid))
  return string-join(
      for $g in /descendant::line[string(@fid) = $lid]
      return string($g), "")
"""


def timed(label, fn):
    started = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - started) * 1000
    return label, sorted(result), elapsed


def main() -> None:
    document = generate_document(GeneratorConfig(
        n_words=300, seed=20060627, hyphenation_rate=0.5))
    goddag = KyGoddag.build(document)
    goddag.span_index()
    flat = fragment_document(document)
    flat_goddag = KyGoddag(document.text, document.root_name)
    flat_goddag.add_hierarchy_from_dom("flat", flat)
    flat_goddag.span_index()
    marked = milestone_document(document, primary="structural")

    def by_fragment_joins():
        words = fragment_groups(flat, "w")
        hits = search_groups(words, TARGET)
        lines = fragment_groups(flat, "line")
        return [g.text for g in lines_containing_group(lines, hits)]

    def by_milestone_scan():
        words = primary_groups(marked, "w")
        hits = search_groups(words, TARGET)
        lines = milestone_groups(marked, "line")
        return [g.text for g in lines_containing_group(lines, hits)]

    runs = [
        timed("extended XQuery on KyGODDAG",
              lambda: evaluate_query(goddag, GODDAG_QUERY)),
        timed("hand-coded joins on fragmentation",
              by_fragment_joins),
        timed("hand-coded scans on milestones",
              by_milestone_scan),
        timed("standard XQuery on fragmentation (same engine)",
              lambda: evaluate_query(flat_goddag, ENGINE_FLAT_QUERY)),
    ]

    answers = {tuple(result) for _label, result, _ms in runs}
    assert len(answers) == 1, "all four approaches must agree"
    print(f"Lines containing '{TARGET}':")
    for line in runs[0][1]:
        print(f"  | {line}")
    print()
    print(f"{'approach':<48} {'time':>10}")
    print("-" * 60)
    baseline_ms = runs[0][2]
    for label, _result, elapsed in runs:
        ratio = elapsed / baseline_ms
        print(f"{label:<48} {elapsed:>8.1f}ms ({ratio:>5.1f}x)")
    print()
    print("The KyGODDAG query is one line of structural axes; the")
    print("flat encodings need either hand-written reassembly code or")
    print("(same engine, bottom row) a quadratic value-based join —")
    print("the paper's 'steep price at query processing time'.")


if __name__ == "__main__":
    main()
