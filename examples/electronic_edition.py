"""Electronic edition rendering — the paper's EPPT scenario (§2, §5).

The paper's engine drove the Edition Production and Presentation
Technology, turning searches over an image-based edition into HTML.
This example renders a full HTML page for a synthetic manuscript:

* the text line by physical line (physical hierarchy),
* damaged regions highlighted (damage hierarchy),
* editorial restorations italicized (restoration hierarchy),
* a search-hits section produced by ``analyze-string``.

All presentation decisions are made by one extended-XQuery query per
section — the transformation capability the paper argues makes XQuery
attractive to the document-encoding community.

Run:  python examples/electronic_edition.py [output.html]
"""

from __future__ import annotations

import sys

from repro import Engine
from repro.corpus import GeneratorConfig, generate_document

PAGE_QUERY = """
for $l in /descendant::line
return (
  <div class="ms-line" id="line-{string($l/@n)}">{
    for $leaf in $l/descendant::leaf() return
      if ($leaf[ancestor::dmg and ancestor::res])
        then <span class="damaged restored">{$leaf}</span>
      else if ($leaf[ancestor::dmg])
        then <span class="damaged">{$leaf}</span>
      else if ($leaf[ancestor::res])
        then <span class="restored">{$leaf}</span>
      else $leaf
  }</div>
)
"""

DAMAGED_WORDS_QUERY = """
for $w in /descendant::w
  [xancestor::dmg or xdescendant::dmg or overlapping::dmg]
order by string($w)
return <li><code>{string($w)}</code></li>
"""

#: ``%PATTERN%`` is substituted textually — ``str.format`` would fight
#: with XQuery's enclosed-expression braces.
SEARCH_QUERY_TEMPLATE = """
for $w in /descendant::w[matches(string(.), "%PATTERN%")]
return (
  <li>{
    let $res := analyze-string($w, "%PATTERN%")
    for $n in $res/child::node() return
      if ($n/self::m) then <mark>{string($n)}</mark> else string($n)
  }</li>
)
"""

STYLE = """
body { font-family: Georgia, serif; max-width: 46em; margin: 2em auto; }
.ms-line { padding: 0.1em 0; }
.damaged { background: #f6c6c6; }
.restored { font-style: italic; color: #3a5a92; }
.damaged.restored { background: #f0d3ee; }
mark { background: #ffe28a; }
"""


def build_edition(search_pattern: str = "si") -> str:
    document = generate_document(GeneratorConfig(
        n_words=150, seed=2006, hyphenation_rate=0.4,
        damage_rate=0.12, restoration_rate=0.12))
    engine = Engine(document)

    page = engine.query(PAGE_QUERY).serialize()
    damaged = engine.query(DAMAGED_WORDS_QUERY).serialize()
    hits = engine.query(
        SEARCH_QUERY_TEMPLATE.replace("%PATTERN%",
                                      search_pattern)).serialize()
    stats = dict(engine.stats().rows())

    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"/>
<title>Synthetic manuscript edition</title>
<style>{STYLE}</style></head>
<body>
<h1>A synthetic manuscript edition</h1>
<p>{stats['leaves']} leaves across
{len(document.hierarchy_names)} concurrent hierarchies;
damaged text is <span class="damaged">shaded</span>, editorial
restorations are <span class="restored">italicized</span>.</p>
<h2>Text by manuscript line</h2>
{page}
<h2>Damaged words</h2>
<ul>{damaged}</ul>
<h2>Words matching /{search_pattern}/</h2>
<ul>{hits}</ul>
</body></html>
"""


def main() -> None:
    html = build_edition()
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(html)
        print(f"wrote {sys.argv[1]} ({len(html)} bytes)")
    else:
        print(html)


if __name__ == "__main__":
    main()
