"""Overlap analytics across hierarchies of a document collection.

Digital-humanities editors need to know *how much* their hierarchies
disagree before choosing an encoding strategy.  This example sweeps the
synthetic corpus generator over increasing hyphenation/boundary-cross
rates and measures, with the paper's extended axes:

* how many words properly overlap a physical line (the *singallice*
  phenomenon),
* how many damage/restoration spans cross word boundaries,
* the leaf fragmentation factor (leaves per word — 1.0 means the
  hierarchies agree perfectly),
* how many extra fragments the fragmentation baseline would need.

Run:  python examples/overlap_statistics.py
"""

from __future__ import annotations

from repro.baselines import fragment_document
from repro.core.goddag import KyGoddag, evaluate_axis
from repro.corpus import GeneratorConfig, generate_document


def overlap_profile(rate: float, n_words: int = 300) -> dict[str, float]:
    config = GeneratorConfig(
        n_words=n_words, seed=77, hyphenation_rate=rate,
        damage_rate=0.10, restoration_rate=0.10,
        boundary_cross_rate=rate)
    document = generate_document(config)
    goddag = KyGoddag.build(document)

    words = list(goddag.elements("w"))
    split_words = sum(
        1 for w in words
        if any(n.name == "line"
               for n in evaluate_axis(goddag, "overlapping", w)))
    crossing_damage = sum(
        1 for d in goddag.elements("dmg")
        if any(n.name == "w"
               for n in evaluate_axis(goddag, "overlapping", d)))
    crossing_restoration = sum(
        1 for r in goddag.elements("res")
        if any(n.name == "w"
               for n in evaluate_axis(goddag, "overlapping", r)))

    flat = fragment_document(document)
    fragments = sum(1 for _ in flat.root.iter_elements())
    originals = sum(
        sum(1 for _ in document[h].document.root.iter_elements())
        for h in document.hierarchy_names)

    return {
        "split_words": split_words,
        "crossing_damage": crossing_damage,
        "crossing_restoration": crossing_restoration,
        "leaves_per_word": len(goddag.partition) / len(words),
        "fragment_blowup": fragments / originals,
    }


def main() -> None:
    rates = (0.0, 0.2, 0.4, 0.6, 0.8)
    header = (f"{'overlap rate':>12} {'split words':>12} "
              f"{'dmg crossing':>13} {'res crossing':>13} "
              f"{'leaves/word':>12} {'frag blowup':>12}")
    print("Overlap profile of a 300-word synthetic manuscript")
    print(header)
    print("-" * len(header))
    for rate in rates:
        profile = overlap_profile(rate)
        print(f"{rate:>12.1f} {profile['split_words']:>12} "
              f"{profile['crossing_damage']:>13} "
              f"{profile['crossing_restoration']:>13} "
              f"{profile['leaves_per_word']:>12.2f} "
              f"{profile['fragment_blowup']:>12.2f}")
    print()
    print("Reading: as overlap grows, words split across lines and")
    print("feature spans cross word boundaries; the leaf partition")
    print("refines and a single-tree fragmentation encoding needs")
    print("proportionally more fragment elements, while the KyGODDAG")
    print("node count is unchanged (it never duplicates elements).")


if __name__ == "__main__":
    main()
