"""Sharded corpora and ``collection()`` scatter-gather (DESIGN.md §13).

Builds a synthetic manuscript far beyond a single bench document,
partitions it into shards at fragment boundaries valid in *every*
hierarchy, and queries it with ``collection("...")``: a scatterable
path (per-shard evaluation + global document-order merge), an
aggregate (per-shard fold), a damage-anchored query that the manifest
statistics prune to a fraction of the shards, and an axis that reaches
across shard cuts and so falls back to fused whole-corpus evaluation.

Run:  python examples/collection_demo.py
"""

import tempfile
from pathlib import Path

from repro.corpus.generator import GeneratorConfig, generate_document
from repro.store import DocumentStore, fuse_documents


def show(label: str, result) -> None:
    print(f"{label}\n  mode={result.mode} "
          f"shards={result.shards_executed}/{result.shards_total} "
          f"(pruned {result.shards_pruned})"
          + (f" reason={result.reason}" if result.reason else ""))


def main() -> None:
    # A corpus with skew: a heavily damaged head fused onto a clean
    # body, so damage-anchored queries can skip most shards.
    head = generate_document(GeneratorConfig(
        n_words=300, seed=1, damage_rate=0.3, restoration_rate=0.2))
    body = generate_document(GeneratorConfig(
        n_words=2400, seed=2, damage_rate=0.0, restoration_rate=0.0))
    corpus = fuse_documents([head, body])

    root = Path(tempfile.mkdtemp(prefix="mhxq-collection-demo-"))
    store = DocumentStore.init(root / "catalog")
    stats = store.add_corpus("ms", corpus, shards=6)
    print(f"corpus 'ms': {stats.words} words in {len(stats.shards)} "
          f"shards; on disk:")
    for entry in sorted(store.root.glob("ms.shard*.mhxb")):
        print(f"  {entry.name:20} {entry.stat().st_size:>7} bytes")
    print("  per-shard dmg cardinality:",
          [shard.cards.get("dmg", 0) for shard in stats.shards])

    # Scatter: every step is shard-local, results merge in global
    # document order via the packed okeys.
    result = store.cquery(
        'collection("ms")/descendant::vline/child::w')
    show("\nscatter: words by verse line", result)
    print(f"  first words: {result.strings()[:4]}")

    # Aggregate: each shard folds locally, the gather folds partials.
    result = store.cquery('count(collection("ms")/descendant::w)')
    show("\naggregate: corpus word-element count", result)
    print(f"  count = {result.value}")

    # Pruning: the spine + semi-join need <dmg>, and the manifest says
    # most shards have none — they are never dispatched.
    result = store.cquery(
        'collection("ms")/descendant::w[overlapping::dmg]')
    show("\npruned: damaged words only", result)

    # The same query with pruning disabled dispatches everywhere.
    result = store.cquery(
        'collection("ms")/descendant::w[overlapping::dmg]',
        prune=False)
    show("unpruned (same answer, more work)", result)

    # A worker pool: forked processes memmap the shards read-only and
    # keep engines + compiled plans warm across queries.
    result = store.cquery('count(collection("ms")/descendant::w)',
                          workers=2)
    show("\npooled: same aggregate over 2 worker processes", result)
    print(f"  count = {result.value}")

    # following:: reaches across shard cuts, so the classifier routes
    # the query to fused whole-corpus evaluation instead.
    result = store.cquery(
        'collection("ms")/descendant::dmg/following::res')
    show("\nfused fallback: cross-shard axis", result)

    store.close()


if __name__ == "__main__":
    main()
