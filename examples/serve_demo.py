"""The query service on the Boethius sample (DESIGN.md §14).

Embeds the asyncio HTTP/JSON server (``repro.server``) over a
document store via ``ServerHandle``, then exercises the surface a
deployment would: paginated document queries, a chunk-streamed result,
a write batch that bumps the published snapshot version, a sharded
corpus query through ``/cquery``, per-tenant accounting in ``/statz``,
and a graceful drain.

The daemon form of the same server is ``mhxq serve --root STORE``.

Run:  python examples/serve_demo.py
"""

import json
import tempfile
from pathlib import Path

from repro.corpus.boethius import boethius_document
from repro.corpus.generator import GeneratorConfig, generate_document
from repro.server import ServerConfig, ServerHandle
from repro.store import DocumentStore


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="mhxq-serve-demo-"))
    store = DocumentStore.init(root / "catalog")
    store.add("boe", boethius_document(validate=False))
    store.add_corpus(
        "corpus",
        generate_document(GeneratorConfig(n_words=1200, seed=7)),
        shards=4)

    with ServerHandle(store, ServerConfig()) as handle:
        print(f"serving on {handle.base_url}\n")

        # -- paginated document query ---------------------------------
        status, page = handle.get_json(
            "/query?name=boe&q=/descendant::w&limit=3")
        print(f"GET /query limit=3 -> {status}")
        print(f"  total={page['total']} items={page['items']} "
              f"next={page['next']}")
        status, page = handle.get_json(
            f"/query?name=boe&q=/descendant::w"
            f"&offset={page['next']}&limit=3")
        print(f"  next page: items={page['items']}\n")

        # -- streamed (chunked NDJSON) result -------------------------
        status, _headers, body = handle.request(
            "GET", "/query?name=boe&q=/descendant::w&stream=1")
        lines = [json.loads(line)
                 for line in body.decode("utf-8").splitlines()]
        print(f"GET /query stream=1 -> {status} "
              f"(NDJSON, one item per chunk)")
        print(f"  meta={lines[0]}")
        print(f"  first items: {lines[1:4]}\n")

        # -- a write batch bumps the published version ----------------
        before = store.snapshot("boe").version
        status, result = handle.post_json("/update", {
            "name": "boe",
            "statements": [
                'insert node <note>served</note> '
                'after /descendant::w[1]',
            ]})
        print(f"POST /update -> {status}; version "
              f"{before} -> {result['version']}")
        status, page = handle.get_json(
            "/query?name=boe&q=count(/descendant::note)")
        print(f"  notes now: {page['items']} at snapshot_version="
              f"{page['snapshot_version']}\n")

        # -- corpus scatter-gather through the PR-7 shard pool --------
        status, reply = handle.get_json(
            '/cquery?q=count(collection("corpus")//w)')
        print(f"GET /cquery -> {status}; {reply['items']} words, "
              f"mode={reply['mode']}, shards "
              f"{reply['shards_executed']}/{reply['shards_total']}\n")

        # -- per-tenant accounting ------------------------------------
        handle.get_json("/query?name=boe&q=count(//w)",
                        headers={"X-Tenant": "alice"})
        handle.get_json("/query?name=boe&q=count(//line)",
                        headers={"X-Tenant": "bob"})
        status, stats = handle.get_json("/statz")
        print(f"GET /statz -> served={stats['served']} "
              f"plan_cache={stats['plan_cache']}")
        for tenant, row in sorted(stats["tenants"].items()):
            print(f"  tenant {tenant}: {row}")

        # -- graceful drain -------------------------------------------
        handle.drain()
        print("\ndrained: listener closed, all admitted work done")

    store.close()
    print("store closed")


if __name__ == "__main__":
    main()
