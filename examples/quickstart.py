"""Quickstart: the paper's running example in a dozen lines.

Builds the Figure 1 multihierarchical document (King Alfred's Boethius,
four concurrent hierarchies over one base text), builds its KyGODDAG,
and runs the paper's §4 queries.

Run:  python examples/quickstart.py
"""

from repro import Engine
from repro.corpus import BASE_TEXT, ENCODINGS


def main() -> None:
    # One engine = one multihierarchical document + its KyGODDAG.
    engine = Engine.from_xml(BASE_TEXT, ENCODINGS)

    print("Base text S:")
    print(f"  {BASE_TEXT}\n")

    print("Hierarchies:", ", ".join(engine.document.hierarchy_names))
    rows = dict(engine.stats().rows())
    print("Leaves (the shared partition):", rows["leaves"], "\n")

    # Paper query I.1 — the word 'singallice' is split across two
    # physical lines; the overlapping:: axis finds both.
    result = engine.query("""
        for $l in /descendant::line
          [xdescendant::w[string(.) = "singallice"] or
           overlapping::w[string(.) = "singallice"]]
        return string($l)
    """)
    print("Q-I.1  lines containing 'singallice':")
    for line in result.strings():
        print(f"  | {line}")
    print(f"  concatenated: {result.serialize()}\n")

    # Paper query II.1 — analyze-string materializes regex matches as a
    # temporary markup hierarchy, so matches can be wrapped in HTML.
    result = engine.query("""
        for $w in /descendant::w[matches(string(.), ".*unawe.*")]
        return (
          let $res := analyze-string($w, ".*unawe.*")
          return
            for $n in $res/child::node() return
              if ($n/self::m) then <b>{string($n)}</b> else string($n)
        , <br/> )
    """)
    print("Q-II.1 substring 'unawe' highlighted:")
    print(f"  {result.serialize()}\n")

    # The extended axes work across *any* pair of hierarchies: which
    # words are damaged (structural vs damage hierarchies)?
    result = engine.query("""
        for $w in /descendant::w
          [xancestor::dmg or xdescendant::dmg or overlapping::dmg]
        return string($w)
    """)
    print("Damaged words:", ", ".join(result.strings()))


if __name__ == "__main__":
    main()
