"""Streaming bulk ingest with NLP standoff layers (DESIGN.md §15).

A typical document-centric NLP pipeline holds prose plus several
annotation layers produced by different tools — tokenization, sentence
segmentation, named entities — each a set of ``(start, end, name,
attrs)`` character spans over the *same* base text.  As concurrent
hierarchies they overlap freely (an entity may cross a sentence
boundary), which is exactly the multihierarchical setting the paper
targets.

This demo ingests such a bundle through ``StreamingBuilder``: the base
XML encoding is parsed event-by-event straight into ``.mhxb`` node
tables (no DOM is ever materialized), and each standoff layer is
attached with ``add_layer`` — no XML serialization round-trip.  The
result is byte-identical to the DOM pipeline's ``save_engine`` output,
so everything downstream (queries, updates, the store, the server)
works unchanged.

Run:  python examples/streaming_ingest_demo.py
"""

import tempfile
from pathlib import Path

from repro import Engine
from repro.markup.streaming import StreamingBuilder

PROSE = (
    "Mr. Sherlock Holmes, who was usually very late in the mornings, "
    "sat at the breakfast table. I stood upon the hearth-rug and "
    "picked up the stick which our visitor had left behind him."
)

#: the structural encoding a digitization workflow would supply
BASE_XML = f"<doc><p>{PROSE}</p></doc>"


def tokenize(text: str) -> list[tuple[int, int, str, dict[str, str]]]:
    """Whitespace tokens with a running index attribute."""
    spans = []
    position = 0
    for index, word in enumerate(text.split(" ")):
        spans.append((position, position + len(word), "tok",
                      {"i": str(index)}))
        position += len(word) + 1
    return spans


def split_sentences(text: str) -> list[tuple[int, int, str]]:
    """Naive sentence spans (period followed by space, 'Mr.' exempt)."""
    spans, start = [], 0
    cursor = 0
    while cursor < len(text):
        if (text[cursor] == "." and not text.endswith("Mr", 0, cursor)
                and (cursor + 1 == len(text) or text[cursor + 1] == " ")):
            spans.append((start, cursor + 1, "s"))
            start = cursor + 2
        cursor += 1
    return spans


#: spans a (pretend) NER model emitted — note "Sherlock Holmes"
#: overlaps two tokens and sits inside the first sentence
ENTITIES = [
    (PROSE.index("Sherlock Holmes"),
     PROSE.index("Sherlock Holmes") + len("Sherlock Holmes"),
     "ent", {"type": "PERSON"}),
]


def main() -> None:
    builder = StreamingBuilder(PROSE)
    builder.add_hierarchy("base", BASE_XML)
    builder.add_layer("tokens", tokenize(PROSE))
    builder.add_layer("sentences", split_sentences(PROSE))
    builder.add_layer("entities", ENTITIES)
    print(f"hierarchies: {builder.hierarchy_names}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "annotated.mhxb"
        size = builder.save(path)
        print(f"streamed {size} bytes into {path.name} "
              "(no DOM was built)")

        # The container is indistinguishable from a DOM-built one:
        # query across the layers like any concurrent hierarchies.
        engine = Engine.from_mhxb(path)
        tokens = engine.query("count(/descendant::tok)").items[0]
        sentences = engine.query("count(/descendant::s)").items[0]
        print(f"{tokens} tokens, {sentences} sentences")

        # Tokens inside the PERSON entity ("Sherlock"), plus the one
        # that straddles its right edge ("Holmes," keeps the comma the
        # entity excludes) — containment vs strict overlap.
        inside = engine.query(
            "for $t in /descendant::ent/xdescendant::tok "
            "return string($t)")
        straddling = engine.query(
            "for $t in /descendant::ent/overlapping::tok "
            "return string($t)")
        print("entity tokens:",
              ", ".join(inside.items + straddling.items))

        # Which sentence contains the entity?
        result = engine.query(
            "count(/descendant::s[xdescendant::ent])")
        print(f"sentences containing an entity: {result.items[0]}")


if __name__ == "__main__":
    main()
