"""The concurrent document store on the Boethius sample (DESIGN.md §10).

Walks the full store lifecycle: ``init`` a catalog, ``add`` the
paper's Figure 1 document, query it through the shared plan cache,
pin an old snapshot while the writer publishes new versions (MVCC —
the old reader's answers never change), abort a bad batch, export and
cold-load the binary ``.mhxb`` container, and ``compact``.

Run:  python examples/store_demo.py
"""

import tempfile
from pathlib import Path

from repro import Engine
from repro.corpus import BASE_TEXT, ENCODINGS
from repro.errors import ReproError
from repro.store import DocumentStore


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="mhxq-store-demo-"))
    store = DocumentStore.init(root / "catalog")
    print(f"store initialized at {store.root}\n")

    document = Engine.from_xml(BASE_TEXT, ENCODINGS).document
    snapshot = store.add("boethius", document)
    print(f"added 'boethius' at version {snapshot.version}; on disk:")
    for entry in sorted(store.root.iterdir()):
        print(f"  {entry.name:18} {entry.stat().st_size:>7} bytes")

    query = "for $l in /descendant::line return string($l)"
    result = store.query("boethius", query)
    print(f"\nquery -> {result.serialize()!r} "
          f"(plan cache hit: {result.stats.plan_cache_hit})")
    result = store.query("boethius", query)
    print(f"again -> plan cache hit: {result.stats.plan_cache_hit}")

    # MVCC: pin the current snapshot, then let the writer move on.
    pinned = store.snapshot("boethius")
    store.update("boethius", [
        'rename node /descendant::w[1] as "word"',
        'insert node <note>added later</note> '
        'after /descendant::word[1]',
    ])
    fresh = store.snapshot("boethius")
    print(f"\nwriter published v{fresh.version}; "
          f"pinned reader still at v{pinned.version}")
    print(f"  pinned  count(//note) = "
          f"{pinned.query('count(//note)').serialize()}")
    print(f"  fresh   count(//note) = "
          f"{fresh.query('count(//note)').serialize()}")

    # A failing statement aborts its whole batch.
    try:
        store.update("boethius", [
            "delete node /descendant::note[1]",
            'rename node /descendant::w[1] as "a", '
            'rename node /descendant::w[1] as "b"',  # conflict
        ])
    except ReproError as error:
        print(f"\nbatch aborted ({type(error).__name__}); "
              f"note survives: count(//note) = "
              f"{store.query('boethius', 'count(//note)').serialize()}")

    # Export the binary container and cold-load it directly.
    export = root / "boethius-export.mhxb"
    store.snapshot("boethius").engine.save_mhxb(export)
    cold = Engine.from_mhxb(export)
    print(f"\ncold-loaded {export.name} (version {cold.version}, "
          f"no XML re-parse): //note -> "
          f"{cold.query('//note/string(.)').serialize()!r}")

    sizes = store.compact()
    print(f"\ncompacted: {sizes}")


if __name__ == "__main__":
    main()
